package catalog

import (
	"sort"

	"qtrtest/internal/datum"
)

// Histogram is an equi-depth histogram over one numeric (or date) column.
// The optimizer uses it for range-predicate selectivity, improving on the
// fixed 1/3 guess for inequality comparisons.
type Histogram struct {
	// Buckets are in ascending order; each covers (prev.Upper, Upper] and
	// holds Count rows, of which Distinct are distinct values.
	Buckets []Bucket
	// NullCount rows have NULL in the column and belong to no bucket.
	NullCount int64
	// TotalCount includes NULLs.
	TotalCount int64
}

// Bucket is one histogram cell.
type Bucket struct {
	Upper    float64
	Count    int64
	Distinct int64
}

// numericValue projects a datum onto the histogram domain.
func numericValue(d datum.Datum) (float64, bool) {
	switch d.K {
	case datum.KindInt, datum.KindDate:
		return float64(d.I), true
	case datum.KindFloat:
		return d.F, true
	default:
		return 0, false
	}
}

// BuildHistogram constructs an equi-depth histogram with at most maxBuckets
// buckets from the column values. It returns nil when the column has no
// numeric values (string and boolean columns keep distinct-count estimation
// only).
func BuildHistogram(rows []datum.Row, col int, maxBuckets int) *Histogram {
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	var vals []float64
	var nulls int64
	for _, r := range rows {
		if r[col].IsNull() {
			nulls++
			continue
		}
		v, ok := numericValue(r[col])
		if !ok {
			return nil
		}
		vals = append(vals, v)
	}
	h := &Histogram{NullCount: nulls, TotalCount: int64(len(rows))}
	if len(vals) == 0 {
		return h
	}
	sort.Float64s(vals)
	perBucket := (len(vals) + maxBuckets - 1) / maxBuckets
	if perBucket < 1 {
		perBucket = 1
	}
	for start := 0; start < len(vals); {
		end := start + perBucket
		if end > len(vals) {
			end = len(vals)
		}
		// Extend the bucket to include all duplicates of its upper bound,
		// so bucket boundaries fall between distinct values.
		for end < len(vals) && vals[end] == vals[end-1] {
			end++
		}
		distinct := int64(1)
		for i := start + 1; i < end; i++ {
			if vals[i] != vals[i-1] {
				distinct++
			}
		}
		h.Buckets = append(h.Buckets, Bucket{
			Upper:    vals[end-1],
			Count:    int64(end - start),
			Distinct: distinct,
		})
		start = end
	}
	return h
}

// rowCount returns the number of non-NULL rows covered by the histogram.
func (h *Histogram) rowCount() int64 {
	return h.TotalCount - h.NullCount
}

// SelectivityLT estimates the fraction of ALL rows (including NULLs, which
// never satisfy a comparison) with value < v (or <= v when orEqual).
func (h *Histogram) SelectivityLT(v float64, orEqual bool) float64 {
	if h.TotalCount == 0 {
		return 0
	}
	nonNull := h.rowCount()
	if nonNull == 0 {
		return 0
	}
	var below float64
	lower := h.lowerBound()
	for _, b := range h.Buckets {
		if v >= b.Upper {
			below += float64(b.Count)
			if v == b.Upper && !orEqual {
				// Remove an estimate of the rows exactly equal to the
				// boundary value.
				below -= float64(b.Count) / float64(maxInt64(b.Distinct, 1))
			}
			lower = b.Upper
			continue
		}
		// v falls inside this bucket: linear interpolation.
		width := b.Upper - lower
		if width > 0 && v > lower {
			below += float64(b.Count) * (v - lower) / width
		}
		break
	}
	if below < 0 {
		below = 0
	}
	if below > float64(nonNull) {
		below = float64(nonNull)
	}
	return below / float64(h.TotalCount)
}

// SelectivityEQ estimates the fraction of all rows equal to v.
func (h *Histogram) SelectivityEQ(v float64) float64 {
	if h.TotalCount == 0 {
		return 0
	}
	lower := h.lowerBound()
	for _, b := range h.Buckets {
		if v <= b.Upper {
			if v <= lower && b.Upper != v && len(h.Buckets) > 0 && b != h.Buckets[0] {
				return 0 // falls between buckets
			}
			return float64(b.Count) / float64(maxInt64(b.Distinct, 1)) / float64(h.TotalCount)
		}
		lower = b.Upper
	}
	return 0
}

// lowerBound returns a synthetic lower edge below the first bucket.
func (h *Histogram) lowerBound() float64 {
	if len(h.Buckets) == 0 {
		return 0
	}
	first := h.Buckets[0]
	if len(h.Buckets) > 1 {
		// Assume the first bucket spans as much as the second.
		return first.Upper - (h.Buckets[1].Upper - first.Upper)
	}
	return first.Upper - 1
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// histogramBuckets is the default resolution; small enough to build fast at
// load time, large enough to resolve TPC-H value ranges.
const histogramBuckets = 16

// ComputeHistograms builds histograms for every numeric column of the table;
// called by ComputeStats.
func (t *Table) ComputeHistograms() {
	if t.Stats.Histograms == nil {
		t.Stats.Histograms = make(map[string]*Histogram, len(t.Columns))
	}
	for i, c := range t.Columns {
		switch c.Type {
		case datum.TypeInt, datum.TypeFloat, datum.TypeDate:
			if h := BuildHistogram(t.Rows, i, histogramBuckets); h != nil {
				t.Stats.Histograms[c.Name] = h
			}
		}
	}
}
