package catalog

import (
	"fmt"
	"math/rand"

	"qtrtest/internal/datum"
)

// TPCHConfig controls the size of the generated TPC-H instance. The paper
// uses TPC-H because its schema (keys, FKs, fact/dimension shape) drives rule
// preconditions; logical-rule exercising is largely independent of data size
// (§6.1), so the default instance is small enough for fast correctness runs.
type TPCHConfig struct {
	// ScaleRows scales the per-table base row counts below. 1.0 yields
	// roughly 2k rows total across all tables.
	ScaleRows float64
	// Seed feeds the deterministic generator.
	Seed int64
}

// DefaultTPCHConfig returns the configuration used by tests and benchmarks.
func DefaultTPCHConfig() TPCHConfig {
	return TPCHConfig{ScaleRows: 1.0, Seed: 42}
}

var tpchNations = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
	"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
	"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
	"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var tpchSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var tpchShipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

var tpchBrands = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22",
	"Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#34"}

var tpchReturnFlags = []string{"R", "A", "N"}

var tpchStatus = []string{"O", "F", "P"}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

// LoadTPCH builds the TPC-H schema, generates deterministic data at the given
// scale, computes statistics and returns the catalog.
func LoadTPCH(cfg TPCHConfig) *Catalog {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := New()

	nRegion := len(tpchRegions)
	nNation := len(tpchNations)
	nSupplier := scaled(40, cfg.ScaleRows)
	nCustomer := scaled(120, cfg.ScaleRows)
	nPart := scaled(100, cfg.ScaleRows)
	nPartsupp := nPart * 3
	if nPartsupp > nPart*nSupplier {
		// The generation loop draws distinct (part, supplier) pairs; at tiny
		// scales the requested count can exceed the pair space, which would
		// loop forever.
		nPartsupp = nPart * nSupplier
	}
	nOrders := scaled(360, cfg.ScaleRows)
	nLineitem := nOrders * 3

	region := &Table{
		Name: "region",
		Columns: []Column{
			{Name: "r_regionkey", Type: datum.TypeInt},
			{Name: "r_name", Type: datum.TypeString},
		},
		PrimaryKey: []string{"r_regionkey"},
	}
	for i := 0; i < nRegion; i++ {
		region.Rows = append(region.Rows, datum.Row{datum.NewInt(int64(i)), datum.NewString(tpchRegions[i])})
	}
	c.Add(region)

	nation := &Table{
		Name: "nation",
		Columns: []Column{
			{Name: "n_nationkey", Type: datum.TypeInt},
			{Name: "n_name", Type: datum.TypeString},
			{Name: "n_regionkey", Type: datum.TypeInt},
		},
		PrimaryKey: []string{"n_nationkey"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"n_regionkey"}, RefTable: "region", RefColumns: []string{"r_regionkey"}},
		},
	}
	for i := 0; i < nNation; i++ {
		nation.Rows = append(nation.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(tpchNations[i]),
			datum.NewInt(int64(i % nRegion)),
		})
	}
	c.Add(nation)

	supplier := &Table{
		Name: "supplier",
		Columns: []Column{
			{Name: "s_suppkey", Type: datum.TypeInt},
			{Name: "s_name", Type: datum.TypeString},
			{Name: "s_nationkey", Type: datum.TypeInt},
			{Name: "s_acctbal", Type: datum.TypeFloat},
		},
		PrimaryKey: []string{"s_suppkey"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"s_nationkey"}, RefTable: "nation", RefColumns: []string{"n_nationkey"}},
		},
	}
	for i := 0; i < nSupplier; i++ {
		supplier.Rows = append(supplier.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("Supplier#%04d", i)),
			datum.NewInt(int64(rng.Intn(nNation))),
			datum.NewFloat(float64(rng.Intn(1000000))/100 - 1000),
		})
	}
	c.Add(supplier)

	customer := &Table{
		Name: "customer",
		Columns: []Column{
			{Name: "c_custkey", Type: datum.TypeInt},
			{Name: "c_name", Type: datum.TypeString},
			{Name: "c_nationkey", Type: datum.TypeInt},
			{Name: "c_acctbal", Type: datum.TypeFloat},
			{Name: "c_mktsegment", Type: datum.TypeString},
		},
		PrimaryKey: []string{"c_custkey"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"c_nationkey"}, RefTable: "nation", RefColumns: []string{"n_nationkey"}},
		},
	}
	for i := 0; i < nCustomer; i++ {
		customer.Rows = append(customer.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("Customer#%05d", i)),
			datum.NewInt(int64(rng.Intn(nNation))),
			datum.NewFloat(float64(rng.Intn(1100000))/100 - 1000),
			datum.NewString(tpchSegments[rng.Intn(len(tpchSegments))]),
		})
	}
	c.Add(customer)

	part := &Table{
		Name: "part",
		Columns: []Column{
			{Name: "p_partkey", Type: datum.TypeInt},
			{Name: "p_name", Type: datum.TypeString},
			{Name: "p_brand", Type: datum.TypeString},
			{Name: "p_size", Type: datum.TypeInt},
			{Name: "p_retailprice", Type: datum.TypeFloat},
		},
		PrimaryKey: []string{"p_partkey"},
	}
	for i := 0; i < nPart; i++ {
		part.Rows = append(part.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(fmt.Sprintf("part %05d", i)),
			datum.NewString(tpchBrands[rng.Intn(len(tpchBrands))]),
			datum.NewInt(int64(1 + rng.Intn(50))),
			datum.NewFloat(900 + float64(rng.Intn(120000))/100),
		})
	}
	c.Add(part)

	partsupp := &Table{
		Name: "partsupp",
		Columns: []Column{
			{Name: "ps_partkey", Type: datum.TypeInt},
			{Name: "ps_suppkey", Type: datum.TypeInt},
			{Name: "ps_availqty", Type: datum.TypeInt},
			{Name: "ps_supplycost", Type: datum.TypeFloat},
		},
		PrimaryKey: []string{"ps_partkey", "ps_suppkey"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"ps_partkey"}, RefTable: "part", RefColumns: []string{"p_partkey"}},
			{Columns: []string{"ps_suppkey"}, RefTable: "supplier", RefColumns: []string{"s_suppkey"}},
		},
	}
	seenPS := make(map[[2]int]bool)
	for len(partsupp.Rows) < nPartsupp {
		pk := rng.Intn(nPart)
		sk := rng.Intn(nSupplier)
		if seenPS[[2]int{pk, sk}] {
			continue
		}
		seenPS[[2]int{pk, sk}] = true
		partsupp.Rows = append(partsupp.Rows, datum.Row{
			datum.NewInt(int64(pk)),
			datum.NewInt(int64(sk)),
			datum.NewInt(int64(1 + rng.Intn(9999))),
			datum.NewFloat(1 + float64(rng.Intn(99900))/100),
		})
	}
	c.Add(partsupp)

	orders := &Table{
		Name: "orders",
		Columns: []Column{
			{Name: "o_orderkey", Type: datum.TypeInt},
			{Name: "o_custkey", Type: datum.TypeInt},
			{Name: "o_orderstatus", Type: datum.TypeString},
			{Name: "o_totalprice", Type: datum.TypeFloat},
			{Name: "o_orderdate", Type: datum.TypeDate},
			{Name: "o_orderpriority", Type: datum.TypeString},
		},
		PrimaryKey: []string{"o_orderkey"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"o_custkey"}, RefTable: "customer", RefColumns: []string{"c_custkey"}},
		},
	}
	for i := 0; i < nOrders; i++ {
		orders.Rows = append(orders.Rows, datum.Row{
			datum.NewInt(int64(i)),
			datum.NewInt(int64(rng.Intn(nCustomer))),
			datum.NewString(tpchStatus[rng.Intn(len(tpchStatus))]),
			datum.NewFloat(1000 + float64(rng.Intn(45000000))/100),
			datum.NewDate(int64(rng.Intn(2557))), // ~7 years of days
			datum.NewString(tpchPriorities[rng.Intn(len(tpchPriorities))]),
		})
	}
	c.Add(orders)

	lineitem := &Table{
		Name: "lineitem",
		Columns: []Column{
			{Name: "l_orderkey", Type: datum.TypeInt},
			{Name: "l_partkey", Type: datum.TypeInt},
			{Name: "l_suppkey", Type: datum.TypeInt},
			{Name: "l_linenumber", Type: datum.TypeInt},
			{Name: "l_quantity", Type: datum.TypeInt},
			{Name: "l_extendedprice", Type: datum.TypeFloat},
			{Name: "l_discount", Type: datum.TypeFloat},
			{Name: "l_returnflag", Type: datum.TypeString},
			{Name: "l_shipdate", Type: datum.TypeDate},
			{Name: "l_shipmode", Type: datum.TypeString},
		},
		PrimaryKey: []string{"l_orderkey", "l_linenumber"},
		ForeignKeys: []ForeignKey{
			{Columns: []string{"l_orderkey"}, RefTable: "orders", RefColumns: []string{"o_orderkey"}},
			{Columns: []string{"l_partkey"}, RefTable: "part", RefColumns: []string{"p_partkey"}},
			{Columns: []string{"l_suppkey"}, RefTable: "supplier", RefColumns: []string{"s_suppkey"}},
		},
	}
	line := 0
	prevOrder := -1
	for i := 0; i < nLineitem; i++ {
		ok := rng.Intn(nOrders)
		if ok == prevOrder {
			line++
		} else {
			line = 0
			prevOrder = ok
		}
		lineitem.Rows = append(lineitem.Rows, datum.Row{
			datum.NewInt(int64(ok)),
			datum.NewInt(int64(rng.Intn(nPart))),
			datum.NewInt(int64(rng.Intn(nSupplier))),
			datum.NewInt(int64(i)), // unique per row; simpler than TPC-H's per-order numbering
			datum.NewInt(int64(1 + rng.Intn(50))),
			datum.NewFloat(900 + float64(rng.Intn(9500000))/100),
			datum.NewFloat(float64(rng.Intn(11)) / 100),
			datum.NewString(tpchReturnFlags[rng.Intn(len(tpchReturnFlags))]),
			datum.NewDate(int64(rng.Intn(2557))),
			datum.NewString(tpchShipModes[rng.Intn(len(tpchShipModes))]),
		})
	}
	// l_linenumber alone is unique in this generator.
	lineitem.PrimaryKey = []string{"l_linenumber"}
	c.Add(lineitem)

	for _, name := range c.TableNames() {
		c.MustTable(name).ComputeStats()
	}
	return c
}
