// Package catalog defines the test database: schemas, tables, statistics and
// the in-memory data they hold. The paper's framework takes a fixed test
// database as input (§2.3); we provide a deterministic scaled-down TPC-H
// instance as the default.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"qtrtest/internal/datum"
)

// Column describes one column of a table.
type Column struct {
	Name     string
	Type     datum.Type
	Nullable bool
}

// ForeignKey records that Columns of this table reference RefColumns of
// RefTable. Rules such as star-join optimizations consult these.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Stats summarizes a table for cardinality estimation.
type Stats struct {
	RowCount int64
	// DistinctCount maps column name to an estimate of its number of
	// distinct values.
	DistinctCount map[string]int64
	// Histograms maps numeric column names to equi-depth histograms used
	// for range-predicate selectivity.
	Histograms map[string]*Histogram
}

// Table is a named relation with columns, optional keys and in-memory rows.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string // column names; empty if none
	ForeignKeys []ForeignKey
	Rows        []datum.Row
	Stats       Stats

	colOnce sync.Once
	colIdx  map[string]int

	vecOnce sync.Once
	vecs    []datum.Vec
	seqIdx  []int

	joinIdx sync.Map // encoded key-column slots -> *joinIndexOnce
}

// JoinIndex is a hash index over one key-column set of a table: Lookup maps
// an encoded key to a slot in Groups, and Groups[slot] lists the table row
// positions holding that key, in row order. Rows with a NULL key column have
// no entry (they can never hash-match). Callers must treat both fields as
// read-only; the index is shared across concurrent executions.
type JoinIndex struct {
	Lookup map[string]int32
	Groups [][]int32
}

type joinIndexOnce struct {
	once sync.Once
	idx  JoinIndex
}

// JoinIndex returns the table's hash index over the given key-column
// ordinals, building it on first use. Tables are immutable during a run, so
// the index — like ColumnData — is computed once per (table, key columns) and
// shared by every hash join that builds against a bare scan of the table.
func (t *Table) JoinIndex(slots []int) *JoinIndex {
	kb := make([]byte, 0, 2*len(slots))
	for _, s := range slots {
		kb = append(kb, byte(s), byte(s>>8))
	}
	v, _ := t.joinIdx.LoadOrStore(string(kb), &joinIndexOnce{})
	jo := v.(*joinIndexOnce)
	jo.once.Do(func() {
		vecs := t.ColumnData()
		idx := JoinIndex{Lookup: make(map[string]int32)}
		var keyBuf []byte
	rows:
		for ri := 0; ri < len(t.Rows); ri++ {
			keyBuf = keyBuf[:0]
			for _, s := range slots {
				d := vecs[s].D[ri]
				if d.IsNull() {
					continue rows
				}
				keyBuf = d.AppendKey(keyBuf)
			}
			slot, ok := idx.Lookup[string(keyBuf)]
			if !ok {
				slot = int32(len(idx.Groups))
				idx.Lookup[string(keyBuf)] = slot
				idx.Groups = append(idx.Groups, nil)
			}
			idx.Groups[slot] = append(idx.Groups[slot], int32(ri))
		}
		jo.idx = idx
	})
	return &jo.idx
}

// ColumnIndex returns the ordinal of the named column, or -1. It is safe for
// concurrent use: the name index is built exactly once, under a sync.Once,
// so concurrent optimizations over a shared catalog never race on it.
func (t *Table) ColumnIndex(name string) int {
	t.colOnce.Do(func() {
		idx := make(map[string]int, len(t.Columns))
		for i, c := range t.Columns {
			idx[c.Name] = i
		}
		t.colIdx = idx
	})
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// ColumnData returns the table's rows transposed into per-column vectors for
// batch execution. The transposition is computed exactly once, under a
// sync.Once, so concurrent executions over a shared catalog never race; the
// caller must treat the vectors as read-only. Rows must be final before the
// first call — later mutations are not reflected.
func (t *Table) ColumnData() []datum.Vec {
	t.vecOnce.Do(func() {
		t.vecs = datum.ColumnVecs(t.Rows, len(t.Columns))
		idx := make([]int, len(t.Rows))
		for i := range idx {
			idx[i] = i
		}
		t.seqIdx = idx
	})
	return t.vecs
}

// SeqIdx returns the shared read-only selection vector [0, 1, … len(Rows)-1]
// batch scans slice windows out of.
func (t *Table) SeqIdx() []int {
	t.ColumnData()
	return t.seqIdx
}

// IsKey reports whether the given column set contains the primary key (and
// therefore functionally determines the row).
func (t *Table) IsKey(cols map[string]bool) bool {
	if len(t.PrimaryKey) == 0 {
		return false
	}
	for _, k := range t.PrimaryKey {
		if !cols[k] {
			return false
		}
	}
	return true
}

// ComputeStats scans the rows and fills in Stats.
func (t *Table) ComputeStats() {
	st := Stats{RowCount: int64(len(t.Rows)), DistinctCount: make(map[string]int64, len(t.Columns))}
	for i, c := range t.Columns {
		seen := make(map[string]bool)
		for _, r := range t.Rows {
			seen[r[i].String()] = true
		}
		st.DistinctCount[c.Name] = int64(len(seen))
	}
	t.Stats = st
	t.ComputeHistograms()
}

// Catalog is a set of tables forming the test database.
type Catalog struct {
	tables map[string]*Table

	// id is a process-unique identity and version a mutation counter; the
	// pair lets result caches key executions by "which database" without
	// hashing table contents. Two Catalog values never share an id, so a
	// (id, version) pair seen twice is guaranteed to denote the same tables
	// holding the same rows — provided callers follow the house rule that
	// table rows are final before the first execution (the same contract
	// ColumnData and JoinIndex already rely on).
	id      uint64
	version uint64
}

// catalogIDs hands out process-unique catalog identities.
var catalogIDs atomic.Uint64

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table), id: catalogIDs.Add(1)}
}

// Add registers a table; it replaces any existing table of the same name.
func (c *Catalog) Add(t *Table) {
	c.tables[t.Name] = t
	c.version++
}

// Identity returns the catalog's process-unique identity and its mutation
// version. Result caches use the pair as the database component of their
// keys; see the type comment for the immutability contract that makes the
// pair sufficient.
func (c *Catalog) Identity() (id, version uint64) {
	return c.id, c.version
}

// Table returns the named table or an error.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// MustTable returns the named table and panics if absent; for use by code
// that has already validated the name (e.g. the TPC-H loader's own tests).
func (c *Catalog) MustTable(name string) *Table {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TableNames returns all table names in sorted order for deterministic
// iteration by generators.
func (c *Catalog) TableNames() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumTables returns the number of tables.
func (c *Catalog) NumTables() int { return len(c.tables) }
