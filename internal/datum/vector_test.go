package datum

import (
	"math/rand"
	"testing"
)

func TestVecAppendTracksNulls(t *testing.T) {
	var v Vec
	r := rand.New(rand.NewSource(1))
	want := make([]bool, 0, 200)
	for i := 0; i < 200; i++ {
		if r.Intn(3) == 0 {
			v.Append(Null)
			want = append(want, true)
		} else {
			v.Append(NewInt(int64(i)))
			want = append(want, false)
		}
	}
	if v.Len() != 200 {
		t.Fatalf("Len = %d, want 200", v.Len())
	}
	for i, w := range want {
		if v.IsNull(i) != w {
			t.Fatalf("IsNull(%d) = %v, want %v", i, v.IsNull(i), w)
		}
		if v.D[i].IsNull() != w {
			t.Fatalf("D[%d] null mismatch", i)
		}
	}
}

func TestVecResetRetainsNothing(t *testing.T) {
	var v Vec
	for i := 0; i < 70; i++ {
		v.Append(Null)
	}
	v.Reset()
	if v.Len() != 0 {
		t.Fatalf("Len after Reset = %d", v.Len())
	}
	// A value appended at position 0 after Reset must not inherit the old
	// bitmap word's null bit.
	v.Append(NewInt(5))
	if v.IsNull(0) {
		t.Fatal("stale null bit survived Reset")
	}
}

func TestColumnVecsTransposes(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewString("a")},
		{Null, NewString("b")},
		{NewInt(3), Null},
	}
	vecs := ColumnVecs(rows, 2)
	if len(vecs) != 2 || vecs[0].Len() != 3 || vecs[1].Len() != 3 {
		t.Fatalf("bad shape: %d vecs", len(vecs))
	}
	if vecs[0].D[0].I != 1 || !vecs[0].IsNull(1) || vecs[0].D[2].I != 3 {
		t.Error("column 0 wrong")
	}
	if vecs[1].D[0].S != "a" || vecs[1].D[1].S != "b" || !vecs[1].IsNull(2) {
		t.Error("column 1 wrong")
	}
}
