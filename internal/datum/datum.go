// Package datum implements the typed values that flow through the query
// engine: rows are slices of Datum, predicates compare Datums, and the
// correctness oracle compares multisets of Datum rows.
//
// SQL three-valued logic is modeled with an explicit Null kind; comparison
// operators on Datums return a tri-state (True/False/Unknown).
package datum

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Type identifies the SQL-level type of a column or value.
type Type int

// Column types supported by the engine. Dates are stored as days since an
// arbitrary epoch, which is all TPC-H predicates need.
const (
	TypeUnknown Type = iota
	TypeInt
	TypeFloat
	TypeString
	TypeBool
	TypeDate
)

// String returns the SQL-ish spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	case TypeDate:
		return "DATE"
	default:
		return "UNKNOWN"
	}
}

// Kind discriminates the runtime representation held by a Datum.
type Kind int

// Datum kinds. KindNull is its own kind regardless of the column type.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// Datum is a single SQL value. The zero value is NULL.
type Datum struct {
	K Kind
	I int64 // KindInt, KindDate
	F float64
	S string
	B bool
}

// Null is the SQL NULL value.
var Null = Datum{K: KindNull}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{K: KindInt, I: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{K: KindFloat, F: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{K: KindString, S: v} }

// NewBool returns a boolean datum.
func NewBool(v bool) Datum { return Datum{K: KindBool, B: v} }

// NewDate returns a date datum holding days since the engine epoch.
func NewDate(days int64) Datum { return Datum{K: KindDate, I: days} }

// IsNull reports whether d is SQL NULL.
func (d Datum) IsNull() bool { return d.K == KindNull }

// Tri is the three-valued logic truth value produced by SQL comparisons.
type Tri int

// Three-valued logic constants.
const (
	False   Tri = 0
	True    Tri = 1
	Unknown Tri = 2
)

// And returns SQL AND over tri-state values.
func (t Tri) And(o Tri) Tri {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or returns SQL OR over tri-state values.
func (t Tri) Or(o Tri) Tri {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not returns SQL NOT over tri-state values.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// TriFromBool converts a Go bool to a Tri.
func TriFromBool(b bool) Tri {
	if b {
		return True
	}
	return False
}

// numeric returns the value as float64 for cross-type numeric comparison.
func (d Datum) numeric() (float64, bool) {
	switch d.K {
	case KindInt, KindDate:
		return float64(d.I), true
	case KindFloat:
		return d.F, true
	default:
		return 0, false
	}
}

// Compare orders two non-NULL datums: -1, 0, +1. Comparing a NULL or
// incomparable kinds returns ok=false. Ints, floats and dates compare
// numerically with each other; strings and bools only with their own kind.
func Compare(a, b Datum) (cmp int, ok bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if an, aok := a.numeric(); aok {
		bn, bok := b.numeric()
		if !bok {
			return 0, false
		}
		switch {
		case an < bn:
			return -1, true
		case an > bn:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.K != b.K {
		return 0, false
	}
	switch a.K {
	case KindString:
		return strings.Compare(a.S, b.S), true
	case KindBool:
		switch {
		case !a.B && b.B:
			return -1, true
		case a.B && !b.B:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// TotalCompare imposes a total order over all datums, NULLs first, for use by
// sort operators and the result-comparison oracle. Unlike Compare it never
// fails: kinds are ordered by kind number when incomparable.
func TotalCompare(a, b Datum) int {
	if a.IsNull() && b.IsNull() {
		return 0
	}
	if a.IsNull() {
		return -1
	}
	if b.IsNull() {
		return 1
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	switch {
	case a.K < b.K:
		return -1
	case a.K > b.K:
		return 1
	}
	return 0
}

// Hash returns a hash of the datum such that datums that Compare equal hash
// equal (numeric kinds are hashed through their float64 image).
func (d Datum) Hash() uint64 {
	h := fnv.New64a()
	switch d.K {
	case KindNull:
		h.Write([]byte{0})
	case KindInt, KindFloat, KindDate:
		f, _ := d.numeric()
		if f == float64(int64(f)) {
			fmt.Fprintf(h, "n%d", int64(f))
		} else {
			fmt.Fprintf(h, "f%g", f)
		}
	case KindString:
		h.Write([]byte{2})
		h.Write([]byte(d.S))
	case KindBool:
		if d.B {
			h.Write([]byte{3, 1})
		} else {
			h.Write([]byte{3, 0})
		}
	}
	return h.Sum64()
}

// String renders the datum for display and for use in generated SQL literals.
func (d Datum) String() string {
	switch d.K {
	case KindNull:
		return "NULL"
	case KindInt, KindDate:
		return strconv.FormatInt(d.I, 10)
	case KindFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(d.S, "'", "''") + "'"
	case KindBool:
		if d.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// TypeOf returns the column type matching the datum's runtime kind.
func (d Datum) TypeOf() Type {
	switch d.K {
	case KindInt:
		return TypeInt
	case KindFloat:
		return TypeFloat
	case KindString:
		return TypeString
	case KindBool:
		return TypeBool
	case KindDate:
		return TypeDate
	}
	return TypeUnknown
}

// Row is a tuple of datums.
type Row []Datum

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// AppendKey appends an injective, prefix-free encoding of the datum to buf
// and returns the extended slice. Rows that Compare equal produce equal
// encodings (numeric kinds are folded through their float64 image), and rows
// that differ produce different encodings regardless of the bytes string
// values contain: string parts are length-prefixed rather than escaped, so a
// value embedding the separator bytes of neighboring parts cannot alias a
// different row. Every non-string part is terminated by ';', which cannot
// occur inside a decimal number, a %g float, "Inf" or "NaN".
func (d Datum) AppendKey(buf []byte) []byte {
	switch d.K {
	case KindNull:
		return append(buf, 'n', ';')
	case KindInt, KindFloat, KindDate:
		f, _ := d.numeric()
		if f == float64(int64(f)) {
			buf = append(buf, 'i')
			buf = strconv.AppendInt(buf, int64(f), 10)
		} else {
			buf = append(buf, 'f')
			buf = strconv.AppendFloat(buf, f, 'g', -1, 64)
		}
		return append(buf, ';')
	case KindString:
		buf = append(buf, 's')
		buf = strconv.AppendInt(buf, int64(len(d.S)), 10)
		buf = append(buf, ':')
		return append(buf, d.S...)
	case KindBool:
		if d.B {
			return append(buf, 'b', '1', ';')
		}
		return append(buf, 'b', '0', ';')
	}
	return append(buf, '?', ';')
}

// AppendKey appends the row's key encoding to buf; see Datum.AppendKey.
// Callers on hot paths reuse the buffer across rows to avoid allocation.
func (r Row) AppendKey(buf []byte) []byte {
	for _, d := range r {
		buf = d.AppendKey(buf)
	}
	return buf
}

// Key renders a row to a string usable as a hash-table key: rows that compare
// equal produce equal keys and — because the encoding is injective — rows
// that differ produce different keys.
func (r Row) Key() string {
	return string(r.AppendKey(make([]byte, 0, 16*len(r))))
}
