package datum

// Bitmap is a dense bitset used by Vec to track NULL positions without
// inspecting every Datum.
type Bitmap []uint64

// Set sets bit i. The bitmap must already span i (see Vec.Append).
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Vec is a column vector: the values of one column across a batch of rows,
// plus a null bitmap mirroring D[i].IsNull(). Batch operators reuse Vecs
// across batches via Reset, so a Vec's backing arrays are only valid until
// the producer's next batch.
type Vec struct {
	D    []Datum
	Null Bitmap
}

// Reset truncates the vector to length zero, retaining capacity.
func (v *Vec) Reset() {
	v.D = v.D[:0]
	v.Null = v.Null[:0]
}

// Append adds a datum, maintaining the null bitmap.
func (v *Vec) Append(d Datum) {
	i := len(v.D)
	if i&63 == 0 {
		v.Null = append(v.Null, 0)
	}
	v.D = append(v.D, d)
	if d.K == KindNull {
		v.Null.Set(i)
	}
}

// AppendGather appends src[i] for every index in idx: the bulk equivalent of
// an Append loop, with the slice growth and bitmap bookkeeping hoisted out of
// the per-datum path.
func (v *Vec) AppendGather(src []Datum, idx []int) {
	n := len(v.D)
	total := n + len(idx)
	if cap(v.D) < total {
		grown := 2 * cap(v.D)
		if grown < total {
			grown = total
		}
		nd := make([]Datum, n, grown)
		copy(nd, v.D)
		v.D = nd
	}
	v.D = v.D[:total]
	for words := (total + 63) / 64; len(v.Null) < words; {
		v.Null = append(v.Null, 0)
	}
	for k, i := range idx {
		d := src[i]
		v.D[n+k] = d
		if d.K == KindNull {
			v.Null.Set(n + k)
		}
	}
}

// Put overwrites value i, keeping the null bitmap in sync.
func (v *Vec) Put(i int, d Datum) {
	v.D[i] = d
	if d.K == KindNull {
		v.Null.Set(i)
	} else {
		v.Null.Clear(i)
	}
}

// Len returns the number of values in the vector.
func (v *Vec) Len() int { return len(v.D) }

// IsNull reports whether value i is NULL.
func (v *Vec) IsNull(i int) bool { return v.Null.Get(i) }

// ColumnVecs transposes rows into width column vectors. It is the bulk
// loading path for columnar caches and row→batch adapters; each row must have
// at least width datums.
func ColumnVecs(rows []Row, width int) []Vec {
	vecs := make([]Vec, width)
	words := (len(rows) + 63) / 64
	for c := range vecs {
		vecs[c].D = make([]Datum, 0, len(rows))
		vecs[c].Null = make(Bitmap, 0, words)
	}
	for _, r := range rows {
		for c := 0; c < width; c++ {
			vecs[c].Append(r[c])
		}
	}
	return vecs
}
