package datum

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCompareNumericCrossKind(t *testing.T) {
	cases := []struct {
		a, b Datum
		cmp  int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewFloat(2.5), 1},
		{NewFloat(1.5), NewInt(2), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewDate(10), NewInt(10), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
	}
	for _, c := range cases {
		got, ok := Compare(c.a, c.b)
		if !ok {
			t.Errorf("Compare(%v,%v) not ok", c.a, c.b)
			continue
		}
		if got != c.cmp {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.cmp)
		}
	}
}

func TestCompareNullAndIncomparable(t *testing.T) {
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Error("Compare with NULL should not be ok")
	}
	if _, ok := Compare(NewInt(1), NewString("x")); ok {
		t.Error("Compare int/string should not be ok")
	}
	if _, ok := Compare(NewBool(true), NewInt(1)); ok {
		t.Error("Compare bool/int should not be ok")
	}
}

func TestTotalCompareNullsFirst(t *testing.T) {
	if TotalCompare(Null, NewInt(-1000)) != -1 {
		t.Error("NULL should sort first")
	}
	if TotalCompare(NewInt(-1000), Null) != 1 {
		t.Error("NULL should sort first (swapped)")
	}
	if TotalCompare(Null, Null) != 0 {
		t.Error("NULL == NULL under total order")
	}
}

func randDatum(r *rand.Rand) Datum {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(r.Intn(20) - 10))
	case 2:
		return NewFloat(float64(r.Intn(20))/2 - 5)
	case 3:
		return NewString(string(rune('a' + r.Intn(4))))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

// Property: TotalCompare is antisymmetric and total.
func TestTotalCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randDatum(r), randDatum(r)
		return TotalCompare(a, b) == -TotalCompare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TotalCompare is transitive over random triples.
func TestTotalCompareTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randDatum(r), randDatum(r), randDatum(r)
		if TotalCompare(a, b) <= 0 && TotalCompare(b, c) <= 0 {
			return TotalCompare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: datums that compare equal hash equal.
func TestHashConsistentWithCompare(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randDatum(r), randDatum(r)
		if c, ok := Compare(a, b); ok && c == 0 {
			return a.Hash() == b.Hash()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestIntFloatHashEqual(t *testing.T) {
	if NewInt(7).Hash() != NewFloat(7).Hash() {
		t.Error("7 and 7.0 must hash equal")
	}
	if NewInt(7).Hash() == NewFloat(7.5).Hash() {
		t.Error("7 and 7.5 must hash differently")
	}
}

func TestTriLogic(t *testing.T) {
	// SQL three-valued truth tables.
	and := [][3]Tri{
		{True, True, True}, {True, False, False}, {True, Unknown, Unknown},
		{False, Unknown, False}, {False, False, False}, {Unknown, Unknown, Unknown},
	}
	for _, c := range and {
		if got := c[0].And(c[1]); got != c[2] {
			t.Errorf("%v AND %v = %v, want %v", c[0], c[1], got, c[2])
		}
		if got := c[1].And(c[0]); got != c[2] {
			t.Errorf("AND not commutative for %v,%v", c[0], c[1])
		}
	}
	or := [][3]Tri{
		{True, Unknown, True}, {False, Unknown, Unknown}, {False, False, False},
		{True, True, True}, {Unknown, Unknown, Unknown},
	}
	for _, c := range or {
		if got := c[0].Or(c[1]); got != c[2] {
			t.Errorf("%v OR %v = %v, want %v", c[0], c[1], got, c[2])
		}
	}
	if Unknown.Not() != Unknown || True.Not() != False || False.Not() != True {
		t.Error("NOT truth table wrong")
	}
}

func TestRowKeyFoldsNumericKinds(t *testing.T) {
	a := Row{NewInt(3), NewString("x")}
	b := Row{NewFloat(3.0), NewString("x")}
	if a.Key() != b.Key() {
		t.Error("rows equal under Compare must have equal keys")
	}
	c := Row{NewFloat(3.5), NewString("x")}
	if a.Key() == c.Key() {
		t.Error("distinct rows must not collide trivially")
	}
}

// Regression for the ISSUE-6 oracle-poisoning class: string values embedding
// separator-looking bytes must not alias differently-shaped rows. The old
// fmt-based encoding joined parts with "<kind>:<part>|", so a single string
// crafted to contain that framing could collide with a multi-column row.
func TestRowKeyStringFramingInjective(t *testing.T) {
	collisions := [][2]Row{
		{{NewString("a|5:b")}, {NewString("a"), NewString("b")}},
		{{NewString("ab")}, {NewString("a"), NewString("b")}},
		{{NewString("a;b")}, {NewString("a"), NewString("b")}},
		{{NewString("s1:a")}, {NewString("a")}},
		{{NewString(""), NewString("x")}, {NewString("x"), NewString("")}},
		{{NewString("1")}, {NewInt(1)}},
		{{NewString("3:'b'")}, {NewString("b")}},
	}
	for _, c := range collisions {
		if c[0].Key() == c[1].Key() {
			t.Errorf("rows %v and %v must not share key %q", c[0], c[1], c[0].Key())
		}
	}
}

// keyEquivalent reports whether two rows should share a key: same length and
// every datum pair either Compare-equal or both NULL.
func keyEquivalent(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNull() || b[i].IsNull() {
			if a[i].IsNull() != b[i].IsNull() {
				return false
			}
			continue
		}
		if c, ok := Compare(a[i], b[i]); !ok || c != 0 {
			return false
		}
	}
	return true
}

// Brute-force injectivity check over a domain stuffed with bytes that stress
// the encoding: separators, digits, encoded-prefix look-alikes, empty
// strings, and numerics that fold across kinds.
func TestRowKeyInjectiveBruteForce(t *testing.T) {
	domain := []Datum{
		Null,
		NewInt(0), NewInt(1), NewInt(-1), NewInt(12),
		NewFloat(1), NewFloat(1.5), NewFloat(-0.5), NewDate(12),
		NewBool(true), NewBool(false),
		NewString(""), NewString("a"), NewString("1"), NewString("|"),
		NewString(":"), NewString(";"), NewString("a|1:b"), NewString("s1:a"),
		NewString("i1;"), NewString("n;"), NewString("1:"),
	}
	r := rand.New(rand.NewSource(6))
	var rows []Row
	for len(rows) < 400 {
		row := make(Row, 1+r.Intn(3))
		for i := range row {
			row[i] = domain[r.Intn(len(domain))]
		}
		rows = append(rows, row)
	}
	for i := range rows {
		for j := i + 1; j < len(rows); j++ {
			sameKey := rows[i].Key() == rows[j].Key()
			if sameKey != keyEquivalent(rows[i], rows[j]) {
				t.Fatalf("rows %v and %v: key collision=%v, equivalent=%v (keys %q vs %q)",
					rows[i], rows[j], sameKey, !sameKey, rows[i].Key(), rows[j].Key())
			}
		}
	}
}

// AppendKey with a reused buffer must agree with Key.
func TestAppendKeyReusesBuffer(t *testing.T) {
	rows := []Row{
		{NewInt(1), NewString("a;b"), Null},
		{NewFloat(2.5), NewBool(true)},
		{},
	}
	buf := make([]byte, 0, 64)
	for _, row := range rows {
		buf = buf[:0]
		buf = row.AppendKey(buf)
		if string(buf) != row.Key() {
			t.Errorf("AppendKey %q != Key %q for %v", buf, row.Key(), row)
		}
	}
}

func TestDatumString(t *testing.T) {
	cases := map[string]Datum{
		"NULL":   Null,
		"42":     NewInt(42),
		"'a''b'": NewString("a'b"),
		"TRUE":   NewBool(true),
		"1.5":    NewFloat(1.5),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", d, got, want)
		}
	}
}

func TestTypeOf(t *testing.T) {
	if NewInt(1).TypeOf() != TypeInt || NewDate(1).TypeOf() != TypeDate ||
		Null.TypeOf() != TypeUnknown || NewBool(true).TypeOf() != TypeBool {
		t.Error("TypeOf mismatch")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewInt(2)}
	c := r.Clone()
	c[0] = NewInt(9)
	if reflect.DeepEqual(r, c) {
		t.Error("Clone must copy")
	}
	if r[0].I != 1 {
		t.Error("Clone mutated original")
	}
}
