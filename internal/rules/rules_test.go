package rules

import (
	"strings"
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/scalar"
)

func TestDefaultRegistryShape(t *testing.T) {
	reg := DefaultRegistry()
	if got := len(reg.Exploration()); got != 30 {
		t.Errorf("exploration rules = %d, want 30", got)
	}
	if got := len(reg.Implementation()); got != 17 {
		t.Errorf("implementation rules = %d, want 17", got)
	}
	for _, r := range reg.All() {
		if r.Pattern() == nil {
			t.Errorf("rule %d (%s) has no pattern", r.ID(), r.Name())
		}
		if r.Name() == "" {
			t.Errorf("rule %d has no name", r.ID())
		}
		got, err := reg.ByID(r.ID())
		if err != nil || got != r {
			t.Errorf("ByID(%d) broken", r.ID())
		}
		byName, err := reg.ByName(r.Name())
		if err != nil || byName != r {
			t.Errorf("ByName(%q) broken", r.Name())
		}
	}
	if _, err := reg.ByID(9999); err == nil {
		t.Error("ByID of unknown id must error")
	}
}

func TestRegistryReplacing(t *testing.T) {
	def := DefaultRegistry().All()
	orig := def[3]
	er := orig.(ExplorationRule)
	sub := NewExplorationRule(er.ID(), er.Name(), er.Pattern(), er.Apply)
	extra := NewExplorationRule(800, "ExtraRule", er.Pattern(), er.Apply)

	reg := RegistryReplacing(map[ID]Rule{er.ID(): sub}, extra)
	all := reg.All()
	if len(all) != len(def)+1 {
		t.Fatalf("size = %d, want %d", len(all), len(def)+1)
	}
	for i, r := range def {
		if all[i].ID() != r.ID() || all[i].Name() != r.Name() {
			t.Errorf("slot %d: got %d (%s), want %d (%s)", i, all[i].ID(), all[i].Name(), r.ID(), r.Name())
		}
	}
	// The substitute must occupy the original's slot, not be appended:
	// definition order is the implementor's equal-cost tie-break.
	if all[3] != Rule(sub) {
		t.Errorf("slot 3 holds %T, want the substitute rule", all[3])
	}
	if all[len(all)-1].ID() != 800 {
		t.Errorf("last rule = %d, want the appended extra (800)", all[len(all)-1].ID())
	}
}

func TestRegistryReplacingPanicsOnUnknownID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on replacement for unknown rule id")
		}
	}()
	er := ExplorationRules()[0]
	RegistryReplacing(map[ID]Rule{9999: NewExplorationRule(9999, "Nope", er.Pattern(), er.Apply)})
}

func TestRegistryPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate rule id")
		}
	}()
	r := ExplorationRules()[0]
	NewRegistry(r, r)
}

func TestPatternString(t *testing.T) {
	p := P(logical.OpSelect, P(logical.OpJoin, Any(), Any()))
	if got := p.String(); got != "Select(Join(*, *))" {
		t.Errorf("String = %q", got)
	}
	if Any().String() != "*" {
		t.Error("generic renders as *")
	}
	if p.CountOps() != 4 {
		t.Errorf("CountOps = %d", p.CountOps())
	}
}

func TestPatternGenericsAndClone(t *testing.T) {
	p := P(logical.OpJoin, Any(), P(logical.OpGroupBy, Any()))
	gens := p.Generics()
	if len(gens) != 2 {
		t.Fatalf("generics = %d", len(gens))
	}
	cp := p.Clone()
	*cp.Generics()[0] = *P(logical.OpGet)
	if p.Generics()[0].Op != logical.OpAny {
		t.Error("Clone shares generic slots with the original")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	reg := DefaultRegistry()
	data, err := reg.ExportXML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `name="JoinCommute"`) {
		t.Error("export missing rule names")
	}
	parsed, err := ParseExportXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(reg.All()) {
		t.Fatalf("parsed %d rules, want %d", len(parsed), len(reg.All()))
	}
	for i, er := range parsed {
		orig := reg.All()[i]
		if er.ID != orig.ID() || er.Name != orig.Name() || er.Kind != orig.Kind() {
			t.Errorf("rule %d metadata mismatch", er.ID)
		}
		if er.Pattern.String() != orig.Pattern().String() {
			t.Errorf("rule %d pattern mismatch: %s vs %s", er.ID, er.Pattern, orig.Pattern())
		}
	}
	// Single-pattern round trip.
	one, err := PatternXML(reg.All()[0].Pattern())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ParsePatternXML(one)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != reg.All()[0].Pattern().String() {
		t.Error("single pattern round trip mismatch")
	}
}

func TestParsePatternXMLErrors(t *testing.T) {
	if _, err := ParsePatternXML([]byte(`<pattern op="Bogus"/>`)); err == nil {
		t.Error("unknown op must error")
	}
	if _, err := ParsePatternXML([]byte(`not xml`)); err == nil {
		t.Error("malformed xml must error")
	}
}

// buildMemo builds a Select(Join(nation, region)) memo for binding tests.
func buildMemo(t *testing.T) (*memo.Memo, *memo.MExpr, *logical.Metadata) {
	t.Helper()
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	n, err := md.AddTable("nation")
	if err != nil {
		t.Fatal(err)
	}
	r, err := md.AddTable("region")
	if err != nil {
		t.Fatal(err)
	}
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{n, r},
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: n.Cols[2]}, R: &scalar.ColRef{ID: r.Cols[0]}}}
	sel := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{join},
		Filter: &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: n.Cols[0]}, R: &scalar.Const{}}}
	m := memo.New(md)
	root := m.Insert(sel)
	m.SetRoot(root)
	return m, m.Group(root).Exprs[0], md
}

func TestBindMatchesShape(t *testing.T) {
	m, sel, _ := buildMemo(t)
	binds := Bind(m, sel, P(logical.OpSelect, P(logical.OpJoin, Any(), Any())))
	if len(binds) != 1 {
		t.Fatalf("expected 1 binding, got %d", len(binds))
	}
	b := binds[0]
	if b.Node.Op != logical.OpSelect || b.Kids[0].Node.Op != logical.OpJoin {
		t.Error("binding structure wrong")
	}
	if !b.Kids[0].Kids[0].IsLeaf() || !b.Kids[0].Kids[1].IsLeaf() {
		t.Error("generic children should bind as leaves")
	}
}

func TestBindRejectsWrongShape(t *testing.T) {
	m, sel, _ := buildMemo(t)
	if binds := Bind(m, sel, P(logical.OpSelect, P(logical.OpGroupBy, Any()))); len(binds) != 0 {
		t.Error("Select(GroupBy) should not bind Select(Join)")
	}
	if binds := Bind(m, sel, P(logical.OpJoin, Any(), Any())); len(binds) != 0 {
		t.Error("Join pattern should not bind a Select root")
	}
}

func TestBindEnumeratesAlternatives(t *testing.T) {
	m, sel, _ := buildMemo(t)
	// Add a second Join expression (commuted) to the join group.
	joinGroup := sel.Kids[0]
	je := m.Group(joinGroup).Exprs[0]
	sub := memo.NewBound(je.Node, memo.GroupRef(je.Kids[1]), memo.GroupRef(je.Kids[0]))
	if !m.InsertSubstitute(sub, joinGroup) {
		t.Fatal("substitute not added")
	}
	binds := Bind(m, sel, P(logical.OpSelect, P(logical.OpJoin, Any(), Any())))
	if len(binds) != 2 {
		t.Fatalf("expected 2 bindings after commute, got %d", len(binds))
	}
}

func TestMatchesTreeAndContainedIn(t *testing.T) {
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	n, _ := md.AddTable("nation")
	sel := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{n}, Filter: scalar.TrueExpr()}
	p := P(logical.OpSelect, Any())
	if !p.MatchesTree(sel) {
		t.Error("Select(*) should match Select(Get)")
	}
	if p.MatchesTree(n) {
		t.Error("Select(*) should not match a Get")
	}
	deep := &logical.Expr{Op: logical.OpLimit, Children: []*logical.Expr{sel}, N: 1}
	if !p.ContainedIn(deep) {
		t.Error("pattern should be found below the root")
	}
}

func TestExplorationRulesSoundPreconditions(t *testing.T) {
	// Rule 14 (PushGroupByBelowJoin) must refuse when the grouping columns
	// do not contain the join columns.
	m, sel, md := buildMemo(t)
	_ = sel
	reg := DefaultRegistry()
	r14, _ := reg.ByID(14)
	// Build GroupBy over the join where group cols exclude the join col.
	joinGroup := m.Group(m.Root).Exprs[0].Kids[0]
	je := m.Group(joinGroup).Exprs[0]
	nName := scalar.ColumnID(2) // n_name from the first AddTable (ids 1..3)
	agg := md.AddColumn(logical.ColumnMeta{Name: "agg"})
	gbNode := &logical.Expr{Op: logical.OpGroupBy,
		GroupCols: []scalar.ColumnID{nName},
		Aggs:      []scalar.Agg{{Op: scalar.AggCountStar, Out: agg}}}
	gb := memo.NewBound(gbNode, memo.NewBound(je.Node, memo.GroupRef(je.Kids[0]), memo.GroupRef(je.Kids[1])))
	// Manually apply: build a fake MExpr via inserting the tree.
	tree := gbNode.Clone()
	tree.Children = []*logical.Expr{m.ExtractFirst(joinGroup)}
	root := m.Insert(tree)
	e := m.Group(root).Exprs[0]
	ctx := &Context{Memo: m}
	binds := Bind(m, e, r14.Pattern())
	if len(binds) == 0 {
		t.Fatal("pattern should bind")
	}
	subs := r14.(ExplorationRule).Apply(ctx, binds[0])
	if len(subs) != 0 {
		t.Error("rule 14 must not fire when join columns are not grouped")
	}
	_ = gb
}

func TestBindLimitCapsBindings(t *testing.T) {
	// A group stuffed with many alternatives must not explode the binding
	// cartesian product: Bind caps at maxBindings.
	m, sel, _ := buildMemo(t)
	joinGroup := sel.Kids[0]
	je := m.Group(joinGroup).Exprs[0]
	// Add many commuted/recommuted variants via artificial filters.
	for i := 0; i < 40; i++ {
		n := je.Node.Clone()
		n.On = &scalar.And{Kids: []scalar.Expr{
			je.Node.On,
			&scalar.Cmp{Op: scalar.CmpGE, L: &scalar.ColRef{ID: 1}, R: &scalar.Const{D: datum.NewInt(int64(i))}},
		}}
		m.InsertSubstitute(memo.NewBound(n, memo.GroupRef(je.Kids[0]), memo.GroupRef(je.Kids[1])), joinGroup)
	}
	binds := Bind(m, sel, P(logical.OpSelect, P(logical.OpJoin, Any(), Any())))
	if len(binds) == 0 || len(binds) > maxBindings {
		t.Fatalf("bindings = %d, want 1..%d", len(binds), maxBindings)
	}
}

func TestPatternMatchesTreeArityMismatch(t *testing.T) {
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	n, _ := md.AddTable("nation")
	// Pattern with more children than the tree node has.
	p := P(logical.OpGet, Any())
	if p.MatchesTree(n) {
		t.Error("pattern with extra children must not match a leaf")
	}
}

func TestKindString(t *testing.T) {
	if KindExploration.String() != "exploration" || KindImplementation.String() != "implementation" {
		t.Error("Kind.String wrong")
	}
}

func TestSetOperations(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(2, 3)
	u := a.Union(b)
	if len(u) != 3 || !u.Contains(3) {
		t.Error("Union wrong")
	}
	var nilSet Set
	if nilSet.Contains(1) {
		t.Error("nil set contains nothing")
	}
	s := NewSet(5, 1, 3).Sorted()
	if s[0] != 1 || s[2] != 5 {
		t.Errorf("Sorted = %v", s)
	}
}
