package rules

import (
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// implRule packages one implementation rule.
type implRule struct {
	info
	impl func(ctx *Context, e *memo.MExpr) []*physical.Expr
}

// Implement implements ImplementationRule.
func (r *implRule) Implement(ctx *Context, e *memo.MExpr) []*physical.Expr {
	return r.impl(ctx, e)
}

func impl(id ID, name string, pattern *Pattern, fn func(*Context, *memo.MExpr) []*physical.Expr) ImplementationRule {
	return &implRule{
		info: info{id: id, name: name, kind: KindImplementation, pattern: pattern},
		impl: fn,
	}
}

// equiKeys extracts hash/merge-join key columns from a join predicate; ok is
// false when the predicate has no equality conjunct between the two sides.
func equiKeys(ctx *Context, e *memo.MExpr) (left, right []scalar.ColumnID, ok bool) {
	l := ctx.Memo.Group(e.Kids[0]).Cols
	r := ctx.Memo.Group(e.Kids[1]).Cols
	// Inlined equi-pair extraction (EquiJoinCols without the pairs and
	// remainder slices): this runs per join expression per costing pass.
	// The single-comparison predicate gets a no-slice fast path, and both
	// key slices share one backing allocation (count pass, then fill).
	var single [1]scalar.Expr
	var conj []scalar.Expr
	if _, isAnd := e.Node.On.(*scalar.And); isAnd {
		conj = scalar.Conjuncts(e.Node.On)
	} else {
		single[0] = e.Node.On
		conj = single[:]
	}
	crossSide := func(c scalar.Expr) (lid, rid scalar.ColumnID, ok bool) {
		cmp, cok := c.(*scalar.Cmp)
		if !cok || cmp.Op != scalar.CmpEQ {
			return 0, 0, false
		}
		lref, lok := cmp.L.(*scalar.ColRef)
		rref, rok := cmp.R.(*scalar.ColRef)
		if !lok || !rok {
			return 0, 0, false
		}
		switch {
		case l.Contains(lref.ID) && r.Contains(rref.ID):
			return lref.ID, rref.ID, true
		case l.Contains(rref.ID) && r.Contains(lref.ID):
			return rref.ID, lref.ID, true
		}
		return 0, 0, false
	}
	n := 0
	for _, c := range conj {
		if _, _, cok := crossSide(c); cok {
			n++
		}
	}
	if n == 0 {
		return nil, nil, false
	}
	buf := make([]scalar.ColumnID, 2*n)
	left, right = buf[:0:n], buf[n:n:2*n]
	for _, c := range conj {
		if lid, rid, cok := crossSide(c); cok {
			left = append(left, lid)
			right = append(right, rid)
		}
	}
	return left, right, true
}

// one returns a single-candidate implementation result, co-allocating the
// slice and the expression: almost every implementation rule yields exactly
// one candidate, and the implementor mutates each candidate in place
// (Children/Rows/Cost), so candidates must be fresh per call anyway.
func one(e physical.Expr) []*physical.Expr {
	buf := &struct {
		e physical.Expr
		s [1]*physical.Expr
	}{e: e}
	buf.s[0] = &buf.e
	return buf.s[:]
}

func joinTypeOf(op logical.Op) physical.JoinType {
	switch op {
	case logical.OpLeftJoin:
		return physical.JoinLeft
	case logical.OpSemiJoin:
		return physical.JoinSemi
	case logical.OpAntiJoin:
		return physical.JoinAnti
	default:
		return physical.JoinInner
	}
}

func hashJoinImpl(id ID, name string, op logical.Op) ImplementationRule {
	return impl(id, name, P(op, Any(), Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
		l, r, ok := equiKeys(ctx, e)
		if !ok {
			return nil
		}
		return one(physical.Expr{
			Op: physical.OpHashJoin, JoinType: joinTypeOf(op),
			On: e.Node.On, EquiLeft: l, EquiRight: r,
		})
	})
}

func nlJoinImpl(id ID, name string, op logical.Op) ImplementationRule {
	return impl(id, name, P(op, Any(), Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
		return one(physical.Expr{
			Op: physical.OpNLJoin, JoinType: joinTypeOf(op), On: e.Node.On,
		})
	})
}

// ImplementationRules returns the implementation (physical) rules in ID
// order. IDs start at 101 so that exploration and implementation rule IDs
// never collide.
func ImplementationRules() []ImplementationRule {
	return []ImplementationRule{
		impl(101, "GetToScan", P(logical.OpGet), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			return one(physical.Expr{Op: physical.OpScan, Table: e.Node.Table, Cols: e.Node.Cols})
		}),

		impl(102, "SelectToFilter", P(logical.OpSelect, Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			return one(physical.Expr{Op: physical.OpFilter, Filter: e.Node.Filter})
		}),

		impl(103, "ProjectToProject", P(logical.OpProject, Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			return one(physical.Expr{Op: physical.OpProject, Projs: e.Node.Projs})
		}),

		hashJoinImpl(104, "JoinToHashJoin", logical.OpJoin),
		nlJoinImpl(105, "JoinToNLJoin", logical.OpJoin),

		impl(106, "JoinToMergeJoin", P(logical.OpJoin, Any(), Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			l, r, ok := equiKeys(ctx, e)
			if !ok {
				return nil
			}
			return one(physical.Expr{
				Op: physical.OpMergeJoin, JoinType: physical.JoinInner,
				On: e.Node.On, EquiLeft: l, EquiRight: r,
			})
		}),

		hashJoinImpl(107, "LeftJoinToHashJoin", logical.OpLeftJoin),
		nlJoinImpl(108, "LeftJoinToNLJoin", logical.OpLeftJoin),
		hashJoinImpl(109, "SemiJoinToHashJoin", logical.OpSemiJoin),
		nlJoinImpl(110, "SemiJoinToNLJoin", logical.OpSemiJoin),
		hashJoinImpl(111, "AntiJoinToHashJoin", logical.OpAntiJoin),
		nlJoinImpl(112, "AntiJoinToNLJoin", logical.OpAntiJoin),

		impl(113, "GroupByToHashAgg", P(logical.OpGroupBy, Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			return one(physical.Expr{
				Op: physical.OpHashAgg, GroupCols: e.Node.GroupCols, Aggs: e.Node.Aggs,
			})
		}),

		impl(114, "GroupByToStreamAgg", P(logical.OpGroupBy, Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			// Sorting by zero columns is meaningless; scalar aggregation is
			// handled by the hash implementation.
			if len(e.Node.GroupCols) == 0 {
				return nil
			}
			return one(physical.Expr{
				Op: physical.OpSortAgg, GroupCols: e.Node.GroupCols, Aggs: e.Node.Aggs,
			})
		}),

		impl(115, "UnionAllToConcat", P(logical.OpUnionAll, Any(), Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			return one(physical.Expr{
				Op: physical.OpConcat, OutCols: e.Node.OutCols, InputCols: e.Node.InputCols,
			})
		}),

		impl(116, "SortToSort", P(logical.OpSort, Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			return one(physical.Expr{Op: physical.OpSort, Keys: e.Node.Keys})
		}),

		impl(117, "LimitToLimit", P(logical.OpLimit, Any()), func(ctx *Context, e *memo.MExpr) []*physical.Expr {
			return one(physical.Expr{Op: physical.OpLimit, N: e.Node.N})
		}),
	}
}

// DefaultRegistry returns the full rule set of the optimizer: 30 exploration
// rules and 17 implementation rules.
func DefaultRegistry() *Registry {
	var all []Rule
	for _, r := range ExplorationRules() {
		all = append(all, r)
	}
	for _, r := range ImplementationRules() {
		all = append(all, r)
	}
	return NewRegistry(all...)
}
