package rules

import (
	"encoding/xml"
	"fmt"

	"qtrtest/internal/logical"
)

// The paper extends the database server "with an API through which it
// returns the rule pattern tree for a rule in a XML format" (§3.1). This
// file is that API: patterns serialize to and parse from XML, so an external
// query generator can consume them without linking against the optimizer.

// xmlPattern is the wire form of a Pattern.
type xmlPattern struct {
	XMLName  xml.Name     `xml:"pattern"`
	Op       string       `xml:"op,attr"`
	Children []xmlPattern `xml:"pattern"`
}

// xmlRule is the wire form of one rule's metadata.
type xmlRule struct {
	XMLName xml.Name   `xml:"rule"`
	ID      int        `xml:"id,attr"`
	Name    string     `xml:"name,attr"`
	Kind    string     `xml:"kind,attr"`
	Pattern xmlPattern `xml:"pattern"`
}

// xmlRuleSet is the wire form of a registry export.
type xmlRuleSet struct {
	XMLName xml.Name  `xml:"ruleset"`
	Rules   []xmlRule `xml:"rule"`
}

func toXMLPattern(p *Pattern) xmlPattern {
	out := xmlPattern{Op: p.Op.String()}
	for _, c := range p.Children {
		out.Children = append(out.Children, toXMLPattern(c))
	}
	return out
}

var opByName = map[string]logical.Op{
	"Any": logical.OpAny, "Get": logical.OpGet, "Select": logical.OpSelect,
	"Project": logical.OpProject, "Join": logical.OpJoin,
	"LeftJoin": logical.OpLeftJoin, "SemiJoin": logical.OpSemiJoin,
	"AntiJoin": logical.OpAntiJoin, "GroupBy": logical.OpGroupBy,
	"UnionAll": logical.OpUnionAll, "Limit": logical.OpLimit,
	"Sort": logical.OpSort,
}

func fromXMLPattern(x xmlPattern) (*Pattern, error) {
	op, ok := opByName[x.Op]
	if !ok {
		return nil, fmt.Errorf("rules: unknown operator %q in pattern XML", x.Op)
	}
	p := &Pattern{Op: op}
	for _, c := range x.Children {
		child, err := fromXMLPattern(c)
		if err != nil {
			return nil, err
		}
		p.Children = append(p.Children, child)
	}
	return p, nil
}

// PatternXML serializes a single pattern.
func PatternXML(p *Pattern) ([]byte, error) {
	return xml.MarshalIndent(toXMLPattern(p), "", "  ")
}

// ParsePatternXML parses a pattern produced by PatternXML.
func ParsePatternXML(data []byte) (*Pattern, error) {
	var x xmlPattern
	if err := xml.Unmarshal(data, &x); err != nil {
		return nil, fmt.Errorf("rules: parsing pattern XML: %w", err)
	}
	return fromXMLPattern(x)
}

// ExportXML serializes every rule in the registry (id, name, kind, pattern).
func (r *Registry) ExportXML() ([]byte, error) {
	var set xmlRuleSet
	for _, rule := range r.All() {
		set.Rules = append(set.Rules, xmlRule{
			ID:      int(rule.ID()),
			Name:    rule.Name(),
			Kind:    rule.Kind().String(),
			Pattern: toXMLPattern(rule.Pattern()),
		})
	}
	return xml.MarshalIndent(set, "", "  ")
}

// ExportedRule is the parsed form of one rule from an XML export: everything
// an external query generator needs.
type ExportedRule struct {
	ID      ID
	Name    string
	Kind    Kind
	Pattern *Pattern
}

// ParseExportXML parses a registry export produced by ExportXML.
func ParseExportXML(data []byte) ([]ExportedRule, error) {
	var set xmlRuleSet
	if err := xml.Unmarshal(data, &set); err != nil {
		return nil, fmt.Errorf("rules: parsing ruleset XML: %w", err)
	}
	out := make([]ExportedRule, 0, len(set.Rules))
	for _, xr := range set.Rules {
		p, err := fromXMLPattern(xr.Pattern)
		if err != nil {
			return nil, err
		}
		kind := KindExploration
		if xr.Kind == "implementation" {
			kind = KindImplementation
		}
		out = append(out, ExportedRule{ID: ID(xr.ID), Name: xr.Name, Kind: kind, Pattern: p})
	}
	return out, nil
}
