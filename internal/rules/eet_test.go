package rules

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/scalar"
)

func TestRegistryWithEETShape(t *testing.T) {
	reg := RegistryWithEET()
	if got := len(reg.Exploration()); got != 37 {
		t.Errorf("exploration rules = %d, want 37 (30 default + 7 EET)", got)
	}
	for i, name := range eetRuleNames {
		r, err := reg.ByID(ID(eetRuleBaseID + i))
		if err != nil {
			t.Errorf("EET rule %d missing: %v", eetRuleBaseID+i, err)
			continue
		}
		if r.Name() != name {
			t.Errorf("rule %d = %q, want %q", eetRuleBaseID+i, r.Name(), name)
		}
	}
	// One rule per catalog entry, same order.
	if len(scalar.EETRewrites()) != len(eetRuleNames) {
		t.Errorf("catalog has %d rewrites, rule pack names %d", len(scalar.EETRewrites()), len(eetRuleNames))
	}
	// The default registry must stay untouched (the paper's experiments
	// index the first n exploration rules).
	if got := len(DefaultRegistry().Exploration()); got != 30 {
		t.Errorf("default exploration rules = %d, want 30", got)
	}
}

// selectMemo builds Select(nation, filter) and returns the memo plus its
// root expression and context.
func selectMemo(t *testing.T, mkFilter func(md *logical.Metadata, tbl *logical.Expr) scalar.Expr) (*Context, *memo.Memo, *memo.MExpr) {
	t.Helper()
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	nat, err := md.AddTable("nation")
	if err != nil {
		t.Fatal(err)
	}
	sel := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{nat},
		Filter: mkFilter(md, nat)}
	m := memo.New(md)
	root := m.Insert(sel)
	m.SetRoot(root)
	return &Context{Memo: m}, m, m.Group(root).Exprs[0]
}

// TestEETGrowthRulesRootOnly: the shape-growing rules fire exactly once on a
// NOT-free filter and never on their own output (the termination invariant).
func TestEETGrowthRulesRootOnly(t *testing.T) {
	reg := RegistryWithEET()
	for _, id := range []ID{41, 42, 44, 45} { // tautology, double-neg, negate-cmp, false-branch
		r, _ := reg.ByID(id)
		er := r.(ExplorationRule)
		ctx, m, e := selectMemo(t, func(md *logical.Metadata, tbl *logical.Expr) scalar.Expr {
			// n_nationkey > 1: NOT-free, well-typed, one referenced column.
			return &scalar.Cmp{Op: scalar.CmpGT,
				L: &scalar.ColRef{ID: tbl.Cols[0]}, R: &scalar.Const{D: datum.NewInt(1)}}
		})
		binds := Bind(m, e, er.Pattern())
		if len(binds) != 1 {
			t.Fatalf("rule %d: %d bindings, want 1", id, len(binds))
		}
		subs := er.Apply(ctx, binds[0])
		if len(subs) != 1 {
			t.Fatalf("rule %d: %d substitutes on a NOT-free filter, want 1", id, len(subs))
		}
		if !containsNot(subs[0].Node.Filter) {
			t.Errorf("rule %d: output filter has no NOT marker; termination argument broken", id)
		}
		// Re-applying to its own output must yield nothing.
		out2 := er.Apply(ctx, memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: subs[0].Node.Filter}, binds[0].Kids[0]))
		if len(out2) != 0 {
			t.Errorf("rule %d: fired again on its own output", id)
		}
	}
}

// TestEETArithRulesPerSite: the arithmetic rules emit one substitute per
// applicable site and preserve expression size.
func TestEETArithRulesPerSite(t *testing.T) {
	reg := RegistryWithEET()
	r46, _ := reg.ByID(46) // commute
	r47, _ := reg.ByID(47) // assoc
	ctx, m, e := selectMemo(t, func(md *logical.Metadata, tbl *logical.Expr) scalar.Expr {
		// ((k + r) + k) < 20 with k, r INT: commute applies at both Arith
		// sites, assoc at the outer one.
		k := &scalar.ColRef{ID: tbl.Cols[0]}
		r := &scalar.ColRef{ID: tbl.Cols[2]}
		inner := &scalar.Arith{Op: scalar.ArithAdd, L: k, R: r}
		outer := &scalar.Arith{Op: scalar.ArithAdd, L: inner, R: k}
		return &scalar.Cmp{Op: scalar.CmpLT, L: outer, R: &scalar.Const{D: datum.NewInt(20)}}
	})
	b := Bind(m, e, r46.Pattern())[0]
	if subs := r46.(ExplorationRule).Apply(ctx, b); len(subs) != 2 {
		t.Errorf("commute-arith: %d substitutes, want 2 (one per Arith site)", len(subs))
	}
	if subs := r47.(ExplorationRule).Apply(ctx, b); len(subs) != 1 {
		t.Errorf("assoc-arith: %d substitutes, want 1 (outer chain only)", len(subs))
	}
}

func TestContainsNot(t *testing.T) {
	c := &scalar.ColRef{ID: 1}
	plain := &scalar.And{Kids: []scalar.Expr{
		&scalar.Cmp{Op: scalar.CmpEQ, L: c, R: &scalar.Const{D: datum.NewInt(1)}},
		&scalar.IsNull{Kid: c},
	}}
	if containsNot(plain) {
		t.Error("containsNot true on a NOT-free tree")
	}
	buried := &scalar.Or{Kids: []scalar.Expr{
		plain,
		&scalar.Cmp{Op: scalar.CmpEQ, L: c,
			R: &scalar.Const{D: datum.NewInt(2)}},
	}}
	buried.Kids = append(buried.Kids, &scalar.Not{Kid: &scalar.IsNull{Kid: c}})
	if !containsNot(buried) {
		t.Error("containsNot missed a buried NOT")
	}
}
