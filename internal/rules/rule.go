// Package rules implements the optimizer's transformation rules: exploration
// (logical→logical) and implementation (logical→physical) rules, their
// patterns, and the registry the optimizer and the testing framework share.
//
// Per the paper (§3.1), every rule is a triple (Name, Pattern, Substitution):
// the pattern is a necessary condition for the rule to be exercised, and the
// registry exports patterns through an API (including XML) so that the query
// generation module can leverage them.
package rules

import (
	"fmt"
	"sort"

	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
)

// ID identifies a rule. IDs are stable across runs: they index experiment
// results and disabled-rule sets.
type ID int

// Kind distinguishes exploration from implementation rules (§2.1).
type Kind int

// Rule kinds.
const (
	KindExploration Kind = iota
	KindImplementation
)

// String returns the kind name.
func (k Kind) String() string {
	if k == KindExploration {
		return "exploration"
	}
	return "implementation"
}

// Context gives rules access to the memo (for group properties) and the
// query metadata (to allocate fresh columns for synthesized operators).
type Context struct {
	Memo *memo.Memo
}

// MD returns the query metadata.
func (c *Context) MD() *logical.Metadata { return c.Memo.MD }

// Rule is the common surface of all transformation rules.
type Rule interface {
	ID() ID
	Name() string
	Kind() Kind
	// Pattern returns the logical-tree shape that must be present for the
	// rule to be exercised (a necessary, not sufficient, condition).
	Pattern() *Pattern
}

// Producer is implemented by rules that declare the shapes their
// substitution produces. Like the input pattern, a produced pattern is a
// necessary-condition over-approximation: every substitute the rule emits
// matches one of the declared shapes, but a declared shape does not imply
// the rule ever emits it. The static analyzer (internal/rulecheck) builds
// the rule-produces-pattern / rule-consumes-pattern graph from these
// declarations; every built-in exploration rule declares its shapes.
type Producer interface {
	// Produces returns the output shapes, or nil when undeclared.
	Produces() []*Pattern
}

// ExplorationRule transforms logical expressions into equivalent logical
// expressions.
type ExplorationRule interface {
	Rule
	// Apply is the substitution function: given a bound match of Pattern(),
	// it returns zero or more equivalent substitute trees. Returning zero
	// substitutes means a precondition beyond the pattern failed; the rule
	// then counts as not exercised.
	Apply(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr
}

// ImplementationRule transforms a logical expression into a physical
// operator choice.
type ImplementationRule interface {
	Rule
	// Implement returns physical payload nodes (Children unset; they
	// correspond 1:1 to e.Kids) or nil if a precondition fails.
	Implement(ctx *Context, e *memo.MExpr) []*physical.Expr
}

// info supplies the boilerplate part of a rule.
type info struct {
	id       ID
	name     string
	kind     Kind
	pattern  *Pattern
	produces []*Pattern
}

func (i info) ID() ID               { return i.id }
func (i info) Name() string         { return i.name }
func (i info) Kind() Kind           { return i.kind }
func (i info) Pattern() *Pattern    { return i.pattern }
func (i info) Produces() []*Pattern { return i.produces }
func (i info) String() string       { return fmt.Sprintf("%s(#%d)", i.name, i.id) }

// Set is a set of rule IDs, used for disabled sets and RuleSet(q).
type Set map[ID]bool

// NewSet builds a set from ids.
func NewSet(ids ...ID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Contains reports membership; a nil Set contains nothing.
func (s Set) Contains(id ID) bool { return s != nil && s[id] }

// Add inserts id.
func (s Set) Add(id ID) { s[id] = true }

// Sorted returns the ids in ascending order.
func (s Set) Sorted() []ID {
	out := make([]ID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Union returns a new set combining s and o.
func (s Set) Union(o Set) Set {
	out := make(Set, len(s)+len(o))
	for id := range s {
		out[id] = true
	}
	for id := range o {
		out[id] = true
	}
	return out
}

// Registry holds the rule set R = {r1..rn} of the optimizer (§2.2).
type Registry struct {
	all    []Rule
	byID   map[ID]Rule
	byName map[string]Rule
	// expl/impl are the kind-filtered views, cached at construction so the
	// optimizer's hot loops never re-filter or re-allocate them.
	expl []ExplorationRule
	impl []ImplementationRule
	// explByOp/implByOp index rules by pattern root operator, in definition
	// order. ValidatePattern guarantees every pattern root is a concrete
	// operator (never OpAny), so the index is total: a rule appears under
	// exactly one operator, and Bind on any other operator's expressions
	// would return nothing anyway.
	explByOp map[logical.Op][]ExplorationRule
	implByOp map[logical.Op][]ImplementationRule
}

// NewRegistry returns a registry with the given rules; it panics on
// duplicate IDs or names and on nil or malformed patterns, which indicate a
// programming error in rule definitions. Validating here means a bad rule
// fails at registry construction rather than later, mid-optimization, when
// the binder first walks its pattern.
func NewRegistry(rs ...Rule) *Registry {
	reg := &Registry{
		byID:     make(map[ID]Rule),
		byName:   make(map[string]Rule),
		explByOp: make(map[logical.Op][]ExplorationRule),
		implByOp: make(map[logical.Op][]ImplementationRule),
	}
	for _, r := range rs {
		if _, dup := reg.byID[r.ID()]; dup {
			panic(fmt.Sprintf("rules: duplicate rule id %d", r.ID()))
		}
		if _, dup := reg.byName[r.Name()]; dup {
			panic(fmt.Sprintf("rules: duplicate rule name %q", r.Name()))
		}
		if err := ValidatePattern(r.Pattern()); err != nil {
			panic(fmt.Sprintf("rules: rule %s(#%d): %v", r.Name(), r.ID(), err))
		}
		reg.all = append(reg.all, r)
		reg.byID[r.ID()] = r
		reg.byName[r.Name()] = r
		op := r.Pattern().Op
		if er, ok := r.(ExplorationRule); ok {
			reg.expl = append(reg.expl, er)
			reg.explByOp[op] = append(reg.explByOp[op], er)
		}
		if ir, ok := r.(ImplementationRule); ok {
			reg.impl = append(reg.impl, ir)
			reg.implByOp[op] = append(reg.implByOp[op], ir)
		}
	}
	return reg
}

// All returns every rule in definition order.
func (r *Registry) All() []Rule { return r.all }

// Exploration returns the exploration rules in definition order. Callers
// must not mutate the returned slice.
func (r *Registry) Exploration() []ExplorationRule { return r.expl }

// Implementation returns the implementation rules in definition order.
// Callers must not mutate the returned slice.
func (r *Registry) Implementation() []ImplementationRule { return r.impl }

// ExplorationFor returns the exploration rules whose pattern root is op, in
// definition order. Because pattern roots are always concrete operators,
// iterating ExplorationFor(e.Op()) visits exactly the rules that could bind
// to e — the rules it omits would all fail the binder's root operator check.
func (r *Registry) ExplorationFor(op logical.Op) []ExplorationRule { return r.explByOp[op] }

// ImplementationFor returns the implementation rules whose pattern root is
// op, in definition order.
func (r *Registry) ImplementationFor(op logical.Op) []ImplementationRule { return r.implByOp[op] }

// ByID returns the rule with the given id, or an error.
func (r *Registry) ByID(id ID) (Rule, error) {
	rule, ok := r.byID[id]
	if !ok {
		return nil, fmt.Errorf("rules: no rule with id %d", id)
	}
	return rule, nil
}

// ByName returns the rule with the given name, or an error.
func (r *Registry) ByName(name string) (Rule, error) {
	rule, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("rules: no rule named %q", name)
	}
	return rule, nil
}
