package rules

import (
	"fmt"

	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/scalar"
)

// explRule packages one exploration rule: metadata plus its substitution
// function.
type explRule struct {
	info
	apply func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr
}

// Apply implements ExplorationRule.
func (r *explRule) Apply(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
	return r.apply(ctx, b)
}

func expl(id ID, name string, pattern *Pattern, apply func(*Context, *memo.BoundExpr) []*memo.BoundExpr) *explRule {
	return &explRule{
		info:  info{id: id, name: name, kind: KindExploration, pattern: pattern},
		apply: apply,
	}
}

// producing declares the rule's output shapes (see Producer). Declarations
// are over-approximations checked statically: internal/rulecheck
// cross-validates them against the optimizer's observed rule interactions,
// so a substitute shape missing here is a test failure, not silent drift.
func (r *explRule) producing(ps ...*Pattern) *explRule {
	r.info.produces = ps
	return r
}

// kidCols returns the output column set of a bound child.
func kidCols(ctx *Context, b *memo.BoundExpr) scalar.ColSet {
	return ctx.Memo.Cols(b)
}

// splitConjuncts partitions the conjuncts of pred into those whose columns
// are all within allowed, and the rest.
func splitConjuncts(pred scalar.Expr, allowed scalar.ColSet) (within, rest []scalar.Expr) {
	conj := scalar.Conjuncts(pred)
	nw := 0
	for _, c := range conj {
		if scalar.RefsWithin(c, allowed) {
			nw++
		}
	}
	// All-on-one-side cases share the (immutable, capacity-clipped) conjunct
	// slice; a genuine split fills both halves of one backing allocation.
	switch nw {
	case 0:
		return nil, conj
	case len(conj):
		return conj, nil
	}
	buf := make([]scalar.Expr, len(conj))
	within, rest = buf[:0:nw], buf[nw:nw:len(conj)]
	for _, c := range conj {
		if scalar.RefsWithin(c, allowed) {
			within = append(within, c)
		} else {
			rest = append(rest, c)
		}
	}
	return within, rest
}

// groupHasRowKey reports whether some expression in the bound child's group
// guarantees duplicate-free rows: a Get over a table with a primary key (Get
// produces every table column, so the key is always in the output). This is
// the functional-dependency precondition of the group-by/join reordering
// rules — the paper's example of a condition beyond the pattern (§1).
func groupHasRowKey(ctx *Context, b *memo.BoundExpr) bool {
	if b.IsLeaf() {
		for _, e := range ctx.Memo.Group(b.Group).Exprs {
			if e.Op() == logical.OpGet {
				t, err := ctx.MD().Catalog().Table(e.Node.Table)
				if err == nil && len(t.PrimaryKey) > 0 {
					return true
				}
			}
		}
		return false
	}
	return b.Node.Op == logical.OpGet
}

// colsFormKey reports whether the given columns contain a key of the bound
// child: the child's group must hold a Get over a table whose primary-key
// columns all appear in cols.
func colsFormKey(ctx *Context, b *memo.BoundExpr, cols scalar.ColSet) bool {
	if !b.IsLeaf() {
		return false
	}
	for _, e := range ctx.Memo.Group(b.Group).Exprs {
		if e.Op() != logical.OpGet {
			continue
		}
		t, err := ctx.MD().Catalog().Table(e.Node.Table)
		if err != nil || len(t.PrimaryKey) == 0 {
			continue
		}
		ok := true
		for _, pk := range t.PrimaryKey {
			idx := t.ColumnIndex(pk)
			if idx < 0 || idx >= len(e.Node.Cols) || !cols.Contains(e.Node.Cols[idx]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// colRefProjs builds pass-through projection items for the given columns.
func colRefProjs(cols []scalar.ColumnID) []logical.ProjItem {
	items := make([]logical.ProjItem, len(cols))
	for i, c := range cols {
		items[i] = logical.ProjItem{Out: c, E: &scalar.ColRef{ID: c}}
	}
	return items
}

// selectOver wraps b in a Select if the conjunct list is non-empty.
func selectOver(b *memo.BoundExpr, conjuncts []scalar.Expr) *memo.BoundExpr {
	if len(conjuncts) == 0 {
		return b
	}
	return memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: scalar.MakeAnd(conjuncts)}, b)
}

// explProduces declares, per rule ID, the shapes the rule's substitution
// can emit (see Producer). Where a rule wraps its output in a Select only
// when leftover conjuncts exist, both the wrapped and unwrapped shapes are
// listed. internal/rulecheck builds the termination graph from this table
// and cross-validates it against observed rule interactions on the TPC-H
// workload, so the table cannot silently drift from the substitutions.
var explProduces = map[ID][]*Pattern{
	1:  {P(logical.OpJoin, Any(), Any())},
	2:  {P(logical.OpJoin, Any(), P(logical.OpJoin, Any(), Any()))},
	3:  {P(logical.OpJoin, P(logical.OpJoin, Any(), Any()), Any())},
	4:  {P(logical.OpSelect, Any())},
	5:  {P(logical.OpJoin, Any(), Any())},
	6:  {P(logical.OpJoin, P(logical.OpSelect, Any()), Any()), P(logical.OpSelect, P(logical.OpJoin, P(logical.OpSelect, Any()), Any()))},
	7:  {P(logical.OpJoin, Any(), P(logical.OpSelect, Any())), P(logical.OpSelect, P(logical.OpJoin, Any(), P(logical.OpSelect, Any())))},
	8:  {P(logical.OpLeftJoin, P(logical.OpSelect, Any()), Any()), P(logical.OpSelect, P(logical.OpLeftJoin, P(logical.OpSelect, Any()), Any()))},
	9:  {P(logical.OpSelect, P(logical.OpJoin, Any(), Any()))},
	10: {P(logical.OpProject, P(logical.OpSelect, Any()))},
	11: {P(logical.OpProject, Any())},
	12: {P(logical.OpGroupBy, P(logical.OpSelect, Any())), P(logical.OpSelect, P(logical.OpGroupBy, P(logical.OpSelect, Any())))},
	13: {P(logical.OpUnionAll, P(logical.OpSelect, Any()), P(logical.OpSelect, Any()))},
	14: {P(logical.OpProject, P(logical.OpJoin, P(logical.OpGroupBy, Any()), Any()))},
	15: {P(logical.OpGroupBy, P(logical.OpJoin, Any(), Any()))},
	16: {P(logical.OpGroupBy, P(logical.OpLeftJoin, Any(), Any()))},
	17: {P(logical.OpLeftJoin, P(logical.OpJoin, Any(), Any()), Any())},
	18: {P(logical.OpJoin, Any(), P(logical.OpLeftJoin, Any(), Any()))},
	19: {P(logical.OpSemiJoin, P(logical.OpSelect, Any()), Any())},
	20: {P(logical.OpAntiJoin, P(logical.OpSelect, Any()), Any())},
	21: {P(logical.OpProject, P(logical.OpJoin, Any(), P(logical.OpGroupBy, Any())))},
	22: {P(logical.OpProject, P(logical.OpSelect, P(logical.OpLeftJoin, Any(), P(logical.OpGroupBy, Any()))))},
	23: {P(logical.OpUnionAll, Any(), Any())},
	24: {P(logical.OpUnionAll, P(logical.OpProject, Any()), P(logical.OpProject, Any()))},
	25: {P(logical.OpGroupBy, P(logical.OpUnionAll, P(logical.OpGroupBy, Any()), P(logical.OpGroupBy, Any())))},
	26: {P(logical.OpProject, P(logical.OpJoin, P(logical.OpProject, Any()), Any()))},
	27: {P(logical.OpProject, P(logical.OpJoin, Any(), P(logical.OpProject, Any())))},
	28: {P(logical.OpSemiJoin, Any(), P(logical.OpProject, Any()))},
	29: {P(logical.OpAntiJoin, Any(), P(logical.OpProject, Any()))},
	30: {P(logical.OpSelect, P(logical.OpJoin, Any(), Any()))},
}

// ExplorationRules returns the 30 exploration (logical) rules in ID order,
// each carrying its declared produced shapes from explProduces.
func ExplorationRules() []ExplorationRule {
	rs := []*explRule{
		// --- join reordering ------------------------------------------------

		expl(1, "JoinCommute", P(logical.OpJoin, Any(), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: b.Node.On}, b.Kids[1], b.Kids[0]),
				}
			}),

		expl(2, "JoinAssocLeft", P(logical.OpJoin, P(logical.OpJoin, Any(), Any()), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// (a ⋈p1 b) ⋈p2 c  →  a ⋈outer (b ⋈inner c)
				inner := b.Kids[0]
				a, bb, c := inner.Kids[0], inner.Kids[1], b.Kids[1]
				all := append(scalar.Conjuncts(inner.Node.On), scalar.Conjuncts(b.Node.On)...)
				bc := kidCols(ctx, bb).Union(kidCols(ctx, c))
				within, rest := splitConjuncts(scalar.MakeAnd(all), bc)
				if len(within) == 0 && len(all) > 0 {
					// Refuse to synthesize a cross product.
					return nil
				}
				newInner := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.MakeAnd(within)}, bb, c)
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.MakeAnd(rest)}, a, newInner),
				}
			}),

		expl(3, "JoinAssocRight", P(logical.OpJoin, Any(), P(logical.OpJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// a ⋈p1 (b ⋈p2 c)  →  (a ⋈inner b) ⋈outer c
				inner := b.Kids[1]
				a, bb, c := b.Kids[0], inner.Kids[0], inner.Kids[1]
				all := append(scalar.Conjuncts(b.Node.On), scalar.Conjuncts(inner.Node.On)...)
				ab := kidCols(ctx, a).Union(kidCols(ctx, bb))
				within, rest := splitConjuncts(scalar.MakeAnd(all), ab)
				if len(within) == 0 && len(all) > 0 {
					return nil
				}
				newInner := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.MakeAnd(within)}, a, bb)
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: scalar.MakeAnd(rest)}, newInner, c),
				}
			}),

		// --- selection placement --------------------------------------------

		expl(4, "SelectMerge", P(logical.OpSelect, P(logical.OpSelect, Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				inner := b.Kids[0]
				merged := scalar.MakeAnd(append(scalar.Conjuncts(b.Node.Filter), scalar.Conjuncts(inner.Node.Filter)...))
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: merged}, inner.Kids[0]),
				}
			}),

		expl(5, "SelectIntoJoin", P(logical.OpSelect, P(logical.OpJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				join := b.Kids[0]
				merged := scalar.MakeAnd(append(scalar.Conjuncts(join.Node.On), scalar.Conjuncts(b.Node.Filter)...))
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: merged}, join.Kids[0], join.Kids[1]),
				}
			}),

		expl(6, "PushSelectBelowJoinLeft", P(logical.OpSelect, P(logical.OpJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				join := b.Kids[0]
				left := kidCols(ctx, join.Kids[0])
				within, rest := splitConjuncts(b.Node.Filter, left)
				if len(within) == 0 {
					return nil
				}
				newJoin := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: join.Node.On},
					selectOver(join.Kids[0], within), join.Kids[1])
				return []*memo.BoundExpr{selectOver(newJoin, rest)}
			}),

		expl(7, "PushSelectBelowJoinRight", P(logical.OpSelect, P(logical.OpJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				join := b.Kids[0]
				right := kidCols(ctx, join.Kids[1])
				within, rest := splitConjuncts(b.Node.Filter, right)
				if len(within) == 0 {
					return nil
				}
				newJoin := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: join.Node.On},
					join.Kids[0], selectOver(join.Kids[1], within))
				return []*memo.BoundExpr{selectOver(newJoin, rest)}
			}),

		expl(8, "PushSelectBelowLeftJoin", P(logical.OpSelect, P(logical.OpLeftJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// Only left-side conjuncts may move below a left outer join.
				join := b.Kids[0]
				left := kidCols(ctx, join.Kids[0])
				within, rest := splitConjuncts(b.Node.Filter, left)
				if len(within) == 0 {
					return nil
				}
				newJoin := memo.NewBound(&logical.Expr{Op: logical.OpLeftJoin, On: join.Node.On},
					selectOver(join.Kids[0], within), join.Kids[1])
				return []*memo.BoundExpr{selectOver(newJoin, rest)}
			}),

		expl(9, "SimplifyLeftJoin", P(logical.OpSelect, P(logical.OpLeftJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// A null-rejecting filter on the null-extended side turns the
				// outer join into an inner join.
				join := b.Kids[0]
				right := kidCols(ctx, join.Kids[1])
				if !logical.RejectsNullsOn(b.Node.Filter, right) {
					return nil
				}
				newJoin := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: join.Node.On},
					join.Kids[0], join.Kids[1])
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: b.Node.Filter}, newJoin),
				}
			}),

		expl(10, "PushSelectBelowProject", P(logical.OpSelect, P(logical.OpProject, Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				proj := b.Kids[0]
				subst := make(map[scalar.ColumnID]scalar.Expr, len(proj.Node.Projs))
				for _, it := range proj.Node.Projs {
					subst[it.Out] = it.E
				}
				inlined := scalar.Substitute(b.Node.Filter, subst)
				newSel := memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: inlined}, proj.Kids[0])
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpProject, Projs: proj.Node.Projs}, newSel),
				}
			}),

		expl(11, "ProjectMerge", P(logical.OpProject, P(logical.OpProject, Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				inner := b.Kids[0]
				subst := make(map[scalar.ColumnID]scalar.Expr, len(inner.Node.Projs))
				for _, it := range inner.Node.Projs {
					subst[it.Out] = it.E
				}
				items := make([]logical.ProjItem, len(b.Node.Projs))
				for i, it := range b.Node.Projs {
					items[i] = logical.ProjItem{Out: it.Out, E: scalar.Substitute(it.E, subst)}
				}
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpProject, Projs: items}, inner.Kids[0]),
				}
			}),

		expl(12, "PushSelectBelowGroupBy", P(logical.OpSelect, P(logical.OpGroupBy, Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				gb := b.Kids[0]
				within, rest := splitConjuncts(b.Node.Filter, scalar.NewColSet(gb.Node.GroupCols...))
				if len(within) == 0 {
					return nil
				}
				newGB := memo.NewBound(&logical.Expr{
					Op: logical.OpGroupBy, GroupCols: gb.Node.GroupCols, Aggs: gb.Node.Aggs,
				}, selectOver(gb.Kids[0], within))
				return []*memo.BoundExpr{selectOver(newGB, rest)}
			}),

		expl(13, "PushSelectBelowUnionAll", P(logical.OpSelect, P(logical.OpUnionAll, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				u := b.Kids[0]
				kids := make([]*memo.BoundExpr, 2)
				for i := 0; i < 2; i++ {
					mapping := make(map[scalar.ColumnID]scalar.ColumnID, len(u.Node.OutCols))
					for j, out := range u.Node.OutCols {
						mapping[out] = u.Node.InputCols[i][j]
					}
					kids[i] = memo.NewBound(&logical.Expr{
						Op: logical.OpSelect, Filter: scalar.Remap(b.Node.Filter, mapping),
					}, u.Kids[i])
				}
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{
						Op: logical.OpUnionAll, OutCols: u.Node.OutCols, InputCols: u.Node.InputCols,
					}, kids[0], kids[1]),
				}
			}),

		// --- group-by / join reordering --------------------------------------

		expl(14, "PushGroupByBelowJoin", P(logical.OpGroupBy, P(logical.OpJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// GroupBy(a ⋈ b) → Project(GroupBy(a) ⋈ b). Preconditions
				// (invariant grouping [3]): aggregates read only a; the join
				// columns from a are grouping columns; and the join columns
				// from b form a key of b, so no a-row is duplicated.
				join := b.Kids[0]
				a, bb := join.Kids[0], join.Kids[1]
				colsA := kidCols(ctx, a)
				gcSet := scalar.NewColSet(b.Node.GroupCols...)
				if !logical.AggsReferenceOnly(b.Node.Aggs, colsA) {
					return nil
				}
				onRefs := scalar.ReferencedCols(join.Node.On)
				for id := range onRefs {
					if colsA.Contains(id) && !gcSet.Contains(id) {
						return nil
					}
				}
				pairs, _ := logical.EquiJoinCols(join.Node.On, colsA, kidCols(ctx, bb))
				rcols := make(scalar.ColSet, len(pairs))
				for _, p := range pairs {
					rcols.Add(p[1])
				}
				if !colsFormKey(ctx, bb, rcols) {
					return nil
				}
				var gcA []scalar.ColumnID
				for _, c := range b.Node.GroupCols {
					if colsA.Contains(c) {
						gcA = append(gcA, c)
					} else if !kidCols(ctx, bb).Contains(c) {
						return nil
					}
				}
				newGB := memo.NewBound(&logical.Expr{
					Op: logical.OpGroupBy, GroupCols: gcA, Aggs: b.Node.Aggs,
				}, a)
				newJoin := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: join.Node.On}, newGB, bb)
				outs := append([]scalar.ColumnID(nil), b.Node.GroupCols...)
				for _, ag := range b.Node.Aggs {
					outs = append(outs, ag.Out)
				}
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpProject, Projs: colRefProjs(outs)}, newJoin),
				}
			}),

		expl(15, "PullGroupByAboveJoin", P(logical.OpJoin, P(logical.OpGroupBy, Any()), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return pullGroupByAboveJoin(ctx, b, logical.OpJoin)
			}),

		expl(16, "PullGroupByAboveLeftJoin", P(logical.OpLeftJoin, P(logical.OpGroupBy, Any()), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return pullGroupByAboveJoin(ctx, b, logical.OpLeftJoin)
			}),

		// --- join / outer-join association ------------------------------------

		expl(17, "JoinLeftJoinAssoc", P(logical.OpJoin, Any(), P(logical.OpLeftJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// a ⋈p1 (b LOJ p2 c) → (a ⋈p1 b) LOJ p2 c, requires p1 over a,b
				// only — the paper's §3 example of rule dependencies.
				loj := b.Kids[1]
				a, bb, c := b.Kids[0], loj.Kids[0], loj.Kids[1]
				ab := kidCols(ctx, a).Union(kidCols(ctx, bb))
				if !scalar.ReferencedCols(b.Node.On).SubsetOf(ab) {
					return nil
				}
				newJoin := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: b.Node.On}, a, bb)
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpLeftJoin, On: loj.Node.On}, newJoin, c),
				}
			}),

		expl(18, "LeftJoinJoinAssoc", P(logical.OpLeftJoin, P(logical.OpJoin, Any(), Any()), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// (a ⋈p1 b) LOJ p2 c → a ⋈p1 (b LOJ p2 c), requires p2 over b,c.
				join := b.Kids[0]
				a, bb, c := join.Kids[0], join.Kids[1], b.Kids[1]
				bc := kidCols(ctx, bb).Union(kidCols(ctx, c))
				if !scalar.ReferencedCols(b.Node.On).SubsetOf(bc) {
					return nil
				}
				newLOJ := memo.NewBound(&logical.Expr{Op: logical.OpLeftJoin, On: b.Node.On}, bb, c)
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: join.Node.On}, a, newLOJ),
				}
			}),

		// --- semi / anti joins -------------------------------------------------

		expl(19, "PushSelectBelowSemiJoin", P(logical.OpSelect, P(logical.OpSemiJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				sj := b.Kids[0]
				newLeft := memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: b.Node.Filter}, sj.Kids[0])
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpSemiJoin, On: sj.Node.On}, newLeft, sj.Kids[1]),
				}
			}),

		expl(20, "PushSelectBelowAntiJoin", P(logical.OpSelect, P(logical.OpAntiJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				aj := b.Kids[0]
				newLeft := memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: b.Node.Filter}, aj.Kids[0])
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpAntiJoin, On: aj.Node.On}, newLeft, aj.Kids[1]),
				}
			}),

		expl(21, "SemiJoinToJoin", P(logical.OpSemiJoin, Any(), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// a SEMI b → Project_a(a ⋈ Distinct_joincols(b)); requires a
				// pure equi-join condition.
				a, bb := b.Kids[0], b.Kids[1]
				pairs, rest := logical.EquiJoinCols(b.Node.On, kidCols(ctx, a), kidCols(ctx, bb))
				if len(pairs) == 0 || len(rest) > 0 {
					return nil
				}
				rcols := make([]scalar.ColumnID, len(pairs))
				for i, p := range pairs {
					rcols[i] = p[1]
				}
				distinct := memo.NewBound(&logical.Expr{Op: logical.OpGroupBy, GroupCols: rcols}, bb)
				join := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: b.Node.On}, a, distinct)
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{
						Op: logical.OpProject, Projs: colRefProjs(kidCols(ctx, a).Sorted()),
					}, join),
				}
			}),

		expl(22, "AntiJoinToLeftJoin", P(logical.OpAntiJoin, Any(), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				// a ANTI b → Project_a(σ(r IS NULL)(a LOJ Distinct_joincols(b))).
				a, bb := b.Kids[0], b.Kids[1]
				pairs, rest := logical.EquiJoinCols(b.Node.On, kidCols(ctx, a), kidCols(ctx, bb))
				if len(pairs) == 0 || len(rest) > 0 {
					return nil
				}
				rcols := make([]scalar.ColumnID, len(pairs))
				for i, p := range pairs {
					rcols[i] = p[1]
				}
				distinct := memo.NewBound(&logical.Expr{Op: logical.OpGroupBy, GroupCols: rcols}, bb)
				loj := memo.NewBound(&logical.Expr{Op: logical.OpLeftJoin, On: b.Node.On}, a, distinct)
				sel := memo.NewBound(&logical.Expr{
					Op: logical.OpSelect, Filter: &scalar.IsNull{Kid: &scalar.ColRef{ID: rcols[0]}},
				}, loj)
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{
						Op: logical.OpProject, Projs: colRefProjs(kidCols(ctx, a).Sorted()),
					}, sel),
				}
			}),

		// --- union ---------------------------------------------------------------

		expl(23, "UnionAllCommute", P(logical.OpUnionAll, Any(), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{
						Op:        logical.OpUnionAll,
						OutCols:   b.Node.OutCols,
						InputCols: [][]scalar.ColumnID{b.Node.InputCols[1], b.Node.InputCols[0]},
					}, b.Kids[1], b.Kids[0]),
				}
			}),

		expl(24, "PushProjectBelowUnionAll", P(logical.OpProject, P(logical.OpUnionAll, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				u := b.Kids[0]
				md := ctx.MD()
				kids := make([]*memo.BoundExpr, 2)
				inCols := make([][]scalar.ColumnID, 2)
				outCols := make([]scalar.ColumnID, len(b.Node.Projs))
				for j, it := range b.Node.Projs {
					outCols[j] = it.Out
				}
				for i := 0; i < 2; i++ {
					mapping := make(map[scalar.ColumnID]scalar.ColumnID, len(u.Node.OutCols))
					for j, out := range u.Node.OutCols {
						mapping[out] = u.Node.InputCols[i][j]
					}
					items := make([]logical.ProjItem, len(b.Node.Projs))
					inCols[i] = make([]scalar.ColumnID, len(b.Node.Projs))
					for j, it := range b.Node.Projs {
						fresh := md.AddColumn(logical.ColumnMeta{
							Name: "u", Type: md.Column(it.Out).Type,
						})
						items[j] = logical.ProjItem{Out: fresh, E: scalar.Remap(it.E, mapping)}
						inCols[i][j] = fresh
					}
					kids[i] = memo.NewBound(&logical.Expr{Op: logical.OpProject, Projs: items}, u.Kids[i])
				}
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{
						Op: logical.OpUnionAll, OutCols: outCols, InputCols: inCols,
					}, kids[0], kids[1]),
				}
			}),

		expl(25, "PushGroupByBelowUnionAll", P(logical.OpGroupBy, P(logical.OpUnionAll, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return pushGroupByBelowUnionAll(ctx, b)
			}),

		// --- column pruning ---------------------------------------------------

		expl(26, "PruneJoinLeftCols", P(logical.OpProject, P(logical.OpJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return pruneJoinSide(ctx, b, 0)
			}),

		expl(27, "PruneJoinRightCols", P(logical.OpProject, P(logical.OpJoin, Any(), Any())),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return pruneJoinSide(ctx, b, 1)
			}),

		expl(28, "ReduceSemiJoinRight", P(logical.OpSemiJoin, Any(), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return reduceExistentialRight(ctx, b, logical.OpSemiJoin)
			}),

		expl(29, "ReduceAntiJoinRight", P(logical.OpAntiJoin, Any(), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return reduceExistentialRight(ctx, b, logical.OpAntiJoin)
			}),

		expl(30, "PullSelectAboveJoin", P(logical.OpJoin, P(logical.OpSelect, Any()), Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				sel := b.Kids[0]
				newJoin := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: b.Node.On},
					sel.Kids[0], b.Kids[1])
				return []*memo.BoundExpr{
					memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: sel.Node.Filter}, newJoin),
				}
			}),
	}
	out := make([]ExplorationRule, len(rs))
	for i, r := range rs {
		ps, ok := explProduces[r.id]
		if !ok {
			panic(fmt.Sprintf("rules: builtin exploration rule %s(#%d) has no produces declaration", r.name, r.id))
		}
		out[i] = r.producing(ps...)
	}
	return out
}

// pullGroupByAboveJoin implements rules 15/16: (GroupBy(a)) ⋈ b →
// GroupBy(a ⋈ b) grouping additionally by every column of b. Preconditions:
// the join predicate must not reference aggregate outputs, and b must be
// duplicate-free (see groupHasRowKey).
func pullGroupByAboveJoin(ctx *Context, b *memo.BoundExpr, joinOp logical.Op) []*memo.BoundExpr {
	gb := b.Kids[0]
	a, bb := gb.Kids[0], b.Kids[1]
	aggOuts := make(scalar.ColSet, len(gb.Node.Aggs))
	for _, ag := range gb.Node.Aggs {
		aggOuts.Add(ag.Out)
	}
	if scalar.ReferencedCols(b.Node.On).Intersects(aggOuts) {
		return nil
	}
	if !groupHasRowKey(ctx, bb) {
		return nil
	}
	gc := append([]scalar.ColumnID(nil), gb.Node.GroupCols...)
	gc = append(gc, kidCols(ctx, bb).Sorted()...)
	newJoin := memo.NewBound(&logical.Expr{Op: joinOp, On: b.Node.On}, a, bb)
	return []*memo.BoundExpr{
		memo.NewBound(&logical.Expr{
			Op: logical.OpGroupBy, GroupCols: gc, Aggs: gb.Node.Aggs,
		}, newJoin),
	}
}

// pushGroupByBelowUnionAll implements rule 25 (local/global aggregation):
// GroupBy(a ∪ b) → GroupBy_global(GroupBy_local(a) ∪ GroupBy_local(b)).
// COUNT becomes SUM of local counts; AVG is not decomposable and blocks the
// rule.
func pushGroupByBelowUnionAll(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
	u := b.Kids[0]
	md := ctx.MD()
	for _, ag := range b.Node.Aggs {
		switch ag.Op {
		case scalar.AggSum, scalar.AggMin, scalar.AggMax, scalar.AggCount, scalar.AggCountStar:
		default:
			return nil
		}
	}
	// The new union outputs the grouping columns under their original ids
	// plus one fresh column per aggregate.
	newOut := append([]scalar.ColumnID(nil), b.Node.GroupCols...)
	aggUnionCols := make([]scalar.ColumnID, len(b.Node.Aggs))
	for k, ag := range b.Node.Aggs {
		typ := md.Column(ag.Out).Type
		if ag.Op == scalar.AggCount || ag.Op == scalar.AggCountStar {
			typ = datum.TypeInt
		}
		aggUnionCols[k] = md.AddColumn(logical.ColumnMeta{Name: "la", Type: typ})
		newOut = append(newOut, aggUnionCols[k])
	}
	outIdx := make(map[scalar.ColumnID]int, len(u.Node.OutCols))
	for j, out := range u.Node.OutCols {
		outIdx[out] = j
	}
	kids := make([]*memo.BoundExpr, 2)
	inCols := make([][]scalar.ColumnID, 2)
	for i := 0; i < 2; i++ {
		mapping := make(map[scalar.ColumnID]scalar.ColumnID, len(u.Node.OutCols))
		for j, out := range u.Node.OutCols {
			mapping[out] = u.Node.InputCols[i][j]
		}
		localGC := make([]scalar.ColumnID, len(b.Node.GroupCols))
		for j, g := range b.Node.GroupCols {
			idx, ok := outIdx[g]
			if !ok {
				return nil
			}
			localGC[j] = u.Node.InputCols[i][idx]
		}
		localAggs := make([]scalar.Agg, len(b.Node.Aggs))
		localOuts := make([]scalar.ColumnID, len(b.Node.Aggs))
		for k, ag := range b.Node.Aggs {
			typ := md.Column(ag.Out).Type
			if ag.Op == scalar.AggCount || ag.Op == scalar.AggCountStar {
				typ = datum.TypeInt
			}
			localOuts[k] = md.AddColumn(logical.ColumnMeta{Name: "la", Type: typ})
			var arg scalar.Expr
			if ag.Arg != nil {
				arg = scalar.Remap(ag.Arg, mapping)
			}
			localAggs[k] = scalar.Agg{Op: ag.Op, Arg: arg, Out: localOuts[k]}
		}
		kids[i] = memo.NewBound(&logical.Expr{
			Op: logical.OpGroupBy, GroupCols: localGC, Aggs: localAggs,
		}, u.Kids[i])
		inCols[i] = append(append([]scalar.ColumnID(nil), localGC...), localOuts...)
	}
	newUnion := memo.NewBound(&logical.Expr{
		Op: logical.OpUnionAll, OutCols: newOut, InputCols: inCols,
	}, kids[0], kids[1])
	globalAggs := make([]scalar.Agg, len(b.Node.Aggs))
	for k, ag := range b.Node.Aggs {
		op := ag.Op
		if op == scalar.AggCount || op == scalar.AggCountStar {
			op = scalar.AggSum
		}
		globalAggs[k] = scalar.Agg{Op: op, Arg: &scalar.ColRef{ID: aggUnionCols[k]}, Out: ag.Out}
	}
	return []*memo.BoundExpr{
		memo.NewBound(&logical.Expr{
			Op: logical.OpGroupBy, GroupCols: b.Node.GroupCols, Aggs: globalAggs,
		}, newUnion),
	}
}

// pruneJoinSide implements rules 26/27: Project(a ⋈ b) → Project(Project(a') ⋈ b)
// where a' keeps only the columns the projection or join predicate needs.
func pruneJoinSide(ctx *Context, b *memo.BoundExpr, side int) []*memo.BoundExpr {
	join := b.Kids[0]
	needed := make(scalar.ColSet)
	for _, it := range b.Node.Projs {
		it.E.Cols(needed)
	}
	join.Node.On.Cols(needed)
	sideCols := kidCols(ctx, join.Kids[side])
	var keep []scalar.ColumnID
	for _, c := range sideCols.Sorted() {
		if needed.Contains(c) {
			keep = append(keep, c)
		}
	}
	if len(keep) == 0 || len(keep) == len(sideCols) {
		return nil
	}
	pruned := memo.NewBound(&logical.Expr{Op: logical.OpProject, Projs: colRefProjs(keep)}, join.Kids[side])
	kids := []*memo.BoundExpr{join.Kids[0], join.Kids[1]}
	kids[side] = pruned
	newJoin := memo.NewBound(&logical.Expr{Op: logical.OpJoin, On: join.Node.On}, kids[0], kids[1])
	return []*memo.BoundExpr{
		memo.NewBound(&logical.Expr{Op: logical.OpProject, Projs: b.Node.Projs}, newJoin),
	}
}

// reduceExistentialRight implements rules 28/29: the right input of a semi or
// anti join only needs the columns its predicate references.
func reduceExistentialRight(ctx *Context, b *memo.BoundExpr, op logical.Op) []*memo.BoundExpr {
	right := kidCols(ctx, b.Kids[1])
	needed := scalar.ReferencedCols(b.Node.On)
	var keep []scalar.ColumnID
	for _, c := range right.Sorted() {
		if needed.Contains(c) {
			keep = append(keep, c)
		}
	}
	if len(keep) == 0 || len(keep) == len(right) {
		return nil
	}
	pruned := memo.NewBound(&logical.Expr{Op: logical.OpProject, Projs: colRefProjs(keep)}, b.Kids[1])
	return []*memo.BoundExpr{
		memo.NewBound(&logical.Expr{Op: op, On: b.Node.On}, b.Kids[0], pruned),
	}
}
