package rules

import (
	"bytes"
	"math/rand"
	"testing"

	"qtrtest/internal/logical"
)

// patternEqual is deep structural equality — stricter than comparing
// String() renderings, which could in principle collide.
func patternEqual(a, b *Pattern) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Op != b.Op || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !patternEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TestExportImportProperty: export→import over the full builtin registry
// (extensions included) is the identity on every rule, structurally, and a
// second export of each round-tripped pattern is byte-identical — the XML
// API (§3.1) loses nothing an external query generator needs.
func TestExportImportProperty(t *testing.T) {
	reg := RegistryWithExtensions()
	data, err := reg.ExportXML()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseExportXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(reg.All()) {
		t.Fatalf("parsed %d rules, want %d", len(parsed), len(reg.All()))
	}
	for i, er := range parsed {
		orig := reg.All()[i]
		if er.ID != orig.ID() || er.Name != orig.Name() || er.Kind != orig.Kind() {
			t.Errorf("rule #%d: metadata changed in round trip", orig.ID())
		}
		if !patternEqual(er.Pattern, orig.Pattern()) {
			t.Errorf("rule #%d: pattern changed in round trip: %s vs %s",
				orig.ID(), er.Pattern, orig.Pattern())
		}
		if err := ValidatePattern(er.Pattern); err != nil {
			t.Errorf("rule #%d: round-tripped pattern invalid: %v", orig.ID(), err)
		}
		first, err := PatternXML(orig.Pattern())
		if err != nil {
			t.Fatal(err)
		}
		second, err := PatternXML(er.Pattern)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("rule #%d: re-export differs from original export", orig.ID())
		}
	}
}

// randomPattern builds a random well-formed pattern: concrete root, exact
// arity everywhere, generics only as leaves.
func randomPattern(rng *rand.Rand, depth int) *Pattern {
	concrete := []logical.Op{
		logical.OpGet, logical.OpSelect, logical.OpProject, logical.OpJoin,
		logical.OpLeftJoin, logical.OpSemiJoin, logical.OpAntiJoin,
		logical.OpGroupBy, logical.OpUnionAll, logical.OpLimit, logical.OpSort,
	}
	op := concrete[rng.Intn(len(concrete))]
	p := &Pattern{Op: op}
	for i := 0; i < op.Arity(); i++ {
		if depth <= 0 || rng.Intn(2) == 0 {
			p.Children = append(p.Children, Any())
		} else {
			p.Children = append(p.Children, randomPattern(rng, depth-1))
		}
	}
	return p
}

// TestPatternXMLRoundTripRandom: the single-pattern wire form is lossless
// over randomly generated well-formed patterns.
func TestPatternXMLRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		p := randomPattern(rng, 4)
		if err := ValidatePattern(p); err != nil {
			t.Fatalf("generator emitted invalid pattern %s: %v", p, err)
		}
		data, err := PatternXML(p)
		if err != nil {
			t.Fatalf("export %s: %v", p, err)
		}
		back, err := ParsePatternXML(data)
		if err != nil {
			t.Fatalf("import %s: %v", p, err)
		}
		if !patternEqual(p, back) {
			t.Fatalf("round trip changed %s into %s", p, back)
		}
	}
}
