package rules

import (
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/scalar"
)

// EET rules lift the scalar expression-level equivalence catalog
// (scalar.EETRewrites) into exploration-rule candidates, so the paper's
// rule-coverage machinery measures the grown vocabulary. Like the extension
// pack they ship outside DefaultRegistry — build a registry with
// RegistryWithEET to enable them; `qtrtest check -eet` lints that registry.
//
// IDs 41–47 (the 35–40 band is left free for future extension rules).
//
// Termination: the five shape-growing rewrites (tautology, double negation,
// De Morgan, comparison negation, false branch) all inject a NOT node into
// the filter, and each only fires when the filter contains NO NOT node yet
// — so filters reachable from a NOT-free filter grow at most once, and the
// reachable expression set stays finite under memo deduplication. The two
// arithmetic rewrites are size-preserving, so their orbit is finite and the
// memo's fingerprint dedup closes it.

// eetRuleBaseID is the first ID of the EET exploration-rule pack.
const eetRuleBaseID = 41

// eetRuleNames maps scalar.EETRewrites() catalog order to rule names.
var eetRuleNames = []string{
	"EETNullTautology",
	"EETDoubleNegation",
	"EETDeMorgan",
	"EETNegateComparison",
	"EETOrFalseBranch",
	"EETCommuteArith",
	"EETAssocArith",
}

// EETRules returns the EET exploration-rule candidates, one per catalog
// rewrite, in catalog order.
func EETRules() []ExplorationRule {
	catalog := scalar.EETRewrites()
	out := make([]ExplorationRule, len(catalog))
	for i, er := range catalog {
		er := er
		// The growth rewrites apply at the filter root only; the
		// arithmetic ones at any site (an Arith never sits at the root of
		// a boolean filter).
		atAnySite := er.Name == "eet-commute-arith" || er.Name == "eet-assoc-arith"
		out[i] = expl(ID(eetRuleBaseID+i), eetRuleNames[i], P(logical.OpSelect, Any()),
			func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
				return applyEET(ctx, b, er, atAnySite)
			}).producing(P(logical.OpSelect, Any()))
	}
	return out
}

// RegistryWithEET returns the default rule set plus the EET candidates.
func RegistryWithEET() *Registry {
	var extra []Rule
	for _, r := range EETRules() {
		extra = append(extra, r)
	}
	return RegistryWith(extra...)
}

func applyEET(ctx *Context, b *memo.BoundExpr, er scalar.EETRewrite, atAnySite bool) []*memo.BoundExpr {
	f := b.Node.Filter
	if f == nil {
		return nil
	}
	env := eetTypeEnv(ctx.MD())
	var filters []scalar.Expr
	if atAnySite {
		for _, s := range scalar.RewriteSites(f) {
			if repl := er.Apply(s.E, env); repl != nil {
				filters = append(filters, s.Rebuild(repl))
			}
		}
	} else {
		// Root-only, and only on artifact-free filters (see the
		// termination note above).
		if containsNot(f) {
			return nil
		}
		if repl := er.Apply(f, env); repl != nil {
			filters = append(filters, repl)
		}
	}
	out := make([]*memo.BoundExpr, len(filters))
	for i, nf := range filters {
		out[i] = memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: nf}, b.Kids[0])
	}
	return out
}

// eetTypeEnv adapts plan metadata to the scalar type checker.
func eetTypeEnv(md *logical.Metadata) scalar.TypeEnv {
	return func(id scalar.ColumnID) (datum.Type, bool) {
		if id < 1 || int(id) > md.NumColumns() {
			return datum.TypeUnknown, false
		}
		return md.Column(id).Type, true
	}
}

// containsNot reports whether any node of e is a NOT. Every shape-growing
// EET rewrite's output contains one, so "NOT-free" marks a filter no growth
// rewrite has touched.
func containsNot(e scalar.Expr) bool {
	switch t := e.(type) {
	case *scalar.Not:
		return true
	case *scalar.Cmp:
		return containsNot(t.L) || containsNot(t.R)
	case *scalar.Arith:
		return containsNot(t.L) || containsNot(t.R)
	case *scalar.And:
		for _, k := range t.Kids {
			if containsNot(k) {
				return true
			}
		}
	case *scalar.Or:
		for _, k := range t.Kids {
			if containsNot(k) {
				return true
			}
		}
	case *scalar.IsNull:
		return containsNot(t.Kid)
	}
	return false
}
