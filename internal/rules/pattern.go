package rules

import (
	"strings"

	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
)

// Pattern describes a logical-tree shape: concrete operators that must be
// present plus generic placeholders (logical.OpAny — the circles in the
// paper's Figure 3) that match any operator subtree.
type Pattern struct {
	Op       logical.Op
	Children []*Pattern
}

// Any returns a generic-operator placeholder.
func Any() *Pattern { return &Pattern{Op: logical.OpAny} }

// P builds a pattern node.
func P(op logical.Op, children ...*Pattern) *Pattern {
	return &Pattern{Op: op, Children: children}
}

// IsGeneric reports whether the node is a generic placeholder.
func (p *Pattern) IsGeneric() bool { return p.Op == logical.OpAny }

// CountOps returns the number of nodes in the pattern.
func (p *Pattern) CountOps() int {
	n := 1
	for _, c := range p.Children {
		n += c.CountOps()
	}
	return n
}

// Clone deep-copies the pattern.
func (p *Pattern) Clone() *Pattern {
	out := &Pattern{Op: p.Op, Children: make([]*Pattern, len(p.Children))}
	for i, c := range p.Children {
		out.Children[i] = c.Clone()
	}
	return out
}

// String renders the pattern in compact functional form, e.g.
// "Join(GroupBy(*), *)".
func (p *Pattern) String() string {
	if p.IsGeneric() && len(p.Children) == 0 {
		return "*"
	}
	var sb strings.Builder
	sb.WriteString(p.Op.String())
	if len(p.Children) > 0 {
		sb.WriteString("(")
		for i, c := range p.Children {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// Generics returns pointers to the generic placeholder slots of the pattern,
// in pre-order. Pattern composition for rule pairs (§3.2) substitutes one
// pattern into these slots.
func (p *Pattern) Generics() []*Pattern {
	var out []*Pattern
	var walk func(x *Pattern)
	walk = func(x *Pattern) {
		if x.IsGeneric() {
			out = append(out, x)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(p)
	return out
}

// MatchesTree reports whether the logical tree contains, at its root, the
// pattern shape. Generic placeholders match any subtree.
func (p *Pattern) MatchesTree(e *logical.Expr) bool {
	if p.IsGeneric() {
		return true
	}
	if e.Op != p.Op || len(p.Children) > len(e.Children) {
		return false
	}
	for i, pc := range p.Children {
		if !pc.MatchesTree(e.Children[i]) {
			return false
		}
	}
	return true
}

// ContainedIn reports whether any node of the tree matches the pattern.
func (p *Pattern) ContainedIn(e *logical.Expr) bool {
	found := false
	e.Walk(func(x *logical.Expr) {
		if !found && p.MatchesTree(x) {
			found = true
		}
	})
	return found
}

// maxBindings caps the number of bindings enumerated per (rule, expression)
// pair; beyond this the extra bindings add no coverage and only cost time.
const maxBindings = 16

// Bind enumerates bindings of the pattern rooted at memo expression e. A
// binding is a BoundExpr tree mirroring the pattern: concrete pattern nodes
// bind to specific memo expressions and generic placeholders become group
// reference leaves.
func Bind(m *memo.Memo, e *memo.MExpr, p *Pattern) []*memo.BoundExpr {
	return bindExpr(m, e, p, maxBindings)
}

func bindExpr(m *memo.Memo, e *memo.MExpr, p *Pattern, limit int) []*memo.BoundExpr {
	if limit <= 0 {
		return nil
	}
	if p.IsGeneric() {
		return []*memo.BoundExpr{memo.GroupRef(e.Group)}
	}
	if e.Op() != p.Op || len(p.Children) != len(e.Kids) {
		return nil
	}
	// Enumerate bindings per child, then take the cartesian product.
	perChild := make([][]*memo.BoundExpr, len(p.Children))
	for i, pc := range p.Children {
		perChild[i] = bindGroup(m, e.Kids[i], pc, limit)
		if len(perChild[i]) == 0 {
			return nil
		}
	}
	results := []*memo.BoundExpr{{Node: e.Node, Group: e.Group, Src: e}}
	for _, kidOptions := range perChild {
		var next []*memo.BoundExpr
		for _, partial := range results {
			for _, opt := range kidOptions {
				if len(next) >= limit {
					break
				}
				nb := &memo.BoundExpr{Node: partial.Node, Group: partial.Group, Src: partial.Src}
				nb.Kids = append(append([]*memo.BoundExpr(nil), partial.Kids...), opt)
				next = append(next, nb)
			}
		}
		results = next
	}
	return results
}

func bindGroup(m *memo.Memo, g memo.GroupID, p *Pattern, limit int) []*memo.BoundExpr {
	if p.IsGeneric() {
		return []*memo.BoundExpr{memo.GroupRef(g)}
	}
	var out []*memo.BoundExpr
	for _, e := range m.Group(g).Exprs {
		if len(out) >= limit {
			break
		}
		out = append(out, bindExpr(m, e, p, limit-len(out))...)
	}
	return out
}
