package rules

import (
	"fmt"
	"strings"

	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
)

// Pattern describes a logical-tree shape: concrete operators that must be
// present plus generic placeholders (logical.OpAny — the circles in the
// paper's Figure 3) that match any operator subtree.
type Pattern struct {
	Op       logical.Op
	Children []*Pattern
}

// Any returns a generic-operator placeholder.
func Any() *Pattern { return &Pattern{Op: logical.OpAny} }

// P builds a pattern node.
func P(op logical.Op, children ...*Pattern) *Pattern {
	return &Pattern{Op: op, Children: children}
}

// IsGeneric reports whether the node is a generic placeholder.
func (p *Pattern) IsGeneric() bool { return p.Op == logical.OpAny }

// CountOps returns the number of nodes in the pattern.
func (p *Pattern) CountOps() int {
	n := 1
	for _, c := range p.Children {
		n += c.CountOps()
	}
	return n
}

// Clone deep-copies the pattern.
func (p *Pattern) Clone() *Pattern {
	out := &Pattern{Op: p.Op, Children: make([]*Pattern, len(p.Children))}
	for i, c := range p.Children {
		out.Children[i] = c.Clone()
	}
	return out
}

// String renders the pattern in compact functional form, e.g.
// "Join(GroupBy(*), *)".
func (p *Pattern) String() string {
	if p.IsGeneric() && len(p.Children) == 0 {
		return "*"
	}
	var sb strings.Builder
	sb.WriteString(p.Op.String())
	if len(p.Children) > 0 {
		sb.WriteString("(")
		for i, c := range p.Children {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// Generics returns pointers to the generic placeholder slots of the pattern,
// in pre-order. Pattern composition for rule pairs (§3.2) substitutes one
// pattern into these slots.
func (p *Pattern) Generics() []*Pattern {
	var out []*Pattern
	var walk func(x *Pattern)
	walk = func(x *Pattern) {
		if x.IsGeneric() {
			out = append(out, x)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(p)
	return out
}

// MatchesTree reports whether the logical tree contains, at its root, the
// pattern shape. Generic placeholders match any subtree.
func (p *Pattern) MatchesTree(e *logical.Expr) bool {
	if p.IsGeneric() {
		return true
	}
	if e.Op != p.Op || len(p.Children) > len(e.Children) {
		return false
	}
	for i, pc := range p.Children {
		if !pc.MatchesTree(e.Children[i]) {
			return false
		}
	}
	return true
}

// ContainedIn reports whether any node of the tree matches the pattern.
func (p *Pattern) ContainedIn(e *logical.Expr) bool {
	found := false
	e.Walk(func(x *logical.Expr) {
		if !found && p.MatchesTree(x) {
			found = true
		}
	})
	return found
}

// ValidatePattern checks that a pattern is well-formed for this engine:
// non-nil, no nil children, every operator known, generic placeholders are
// leaves, the root is concrete, and every concrete node carries exactly its
// operator's arity in children. The arity requirement is what the binder
// enforces (bindExpr rejects any child-count mismatch), so an under- or
// over-specified pattern is not "looser" — it can never bind at all.
func ValidatePattern(p *Pattern) error {
	if p == nil {
		return fmt.Errorf("nil pattern")
	}
	if p.IsGeneric() {
		return fmt.Errorf("pattern root is a generic placeholder (matches nothing bindable)")
	}
	var walk func(x *Pattern) error
	walk = func(x *Pattern) error {
		if x == nil {
			return fmt.Errorf("nil pattern node")
		}
		if x.Op < logical.OpAny || x.Op > logical.OpSort {
			return fmt.Errorf("unknown operator %s in pattern", x.Op)
		}
		if x.IsGeneric() {
			if len(x.Children) != 0 {
				return fmt.Errorf("generic placeholder has %d children (must be a leaf)", len(x.Children))
			}
			return nil
		}
		if got, want := len(x.Children), x.Op.Arity(); got != want {
			return fmt.Errorf("operator %s has %d pattern children, arity is %d", x.Op, got, want)
		}
		for _, c := range x.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(p)
}

// Unifies reports whether two patterns can describe the same tree: generic
// placeholders unify with anything, concrete nodes unify when the operators
// match and the children unify pairwise. Child lists of different lengths
// unify on the common prefix (the shorter side leaves the rest
// unconstrained), so under-specified patterns err toward unifying.
func (p *Pattern) Unifies(q *Pattern) bool {
	if p == nil || q == nil {
		return true
	}
	if p.IsGeneric() || q.IsGeneric() {
		return true
	}
	if p.Op != q.Op {
		return false
	}
	n := len(p.Children)
	if len(q.Children) < n {
		n = len(q.Children)
	}
	for i := 0; i < n; i++ {
		if !p.Children[i].Unifies(q.Children[i]) {
			return false
		}
	}
	return true
}

// Nodes returns every node of the pattern in pre-order.
func (p *Pattern) Nodes() []*Pattern {
	var out []*Pattern
	var walk func(x *Pattern)
	walk = func(x *Pattern) {
		out = append(out, x)
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(p)
	return out
}

// Overlaps reports whether some subtree of p and some subtree of q unify:
// a single logical tree can then satisfy both patterns on overlapping
// nodes. This is the static core of pattern composition (§3.2) — it
// over-approximates "rule q can be exercised on an expression shaped like
// p": if the substitution of one rule creates a tree matching p, a rule
// whose pattern is q can bind somewhere on it only if Overlaps holds.
func (p *Pattern) Overlaps(q *Pattern) bool {
	for _, x := range p.Nodes() {
		if x.IsGeneric() {
			continue
		}
		for _, y := range q.Nodes() {
			if y.IsGeneric() {
				continue
			}
			if x.Unifies(y) {
				return true
			}
		}
	}
	return false
}

// maxBindings caps the number of bindings enumerated per (rule, expression)
// pair; beyond this the extra bindings add no coverage and only cost time.
const maxBindings = 16

// Bind enumerates bindings of the pattern rooted at memo expression e. A
// binding is a BoundExpr tree mirroring the pattern: concrete pattern nodes
// bind to specific memo expressions and generic placeholders become group
// reference leaves.
func Bind(m *memo.Memo, e *memo.MExpr, p *Pattern) []*memo.BoundExpr {
	return bindExpr(m, e, p, maxBindings)
}

func bindExpr(m *memo.Memo, e *memo.MExpr, p *Pattern, limit int) []*memo.BoundExpr {
	if limit <= 0 {
		return nil
	}
	if p.IsGeneric() {
		return []*memo.BoundExpr{m.LeafRef(e.Group)}
	}
	if e.Op() != p.Op || len(p.Children) != len(e.Kids) {
		return nil
	}
	// Enumerate bindings per child. Generic placeholders always bind exactly
	// one (cached) group-reference leaf, and concrete children usually bind a
	// single expression, so the overwhelmingly common case is one binding per
	// child: build that single result directly and skip the cartesian
	// product. Operator arity is at most 2, so perChild lives on the stack.
	var pcbuf [2][]*memo.BoundExpr
	perChild := pcbuf[:len(p.Children)]
	single := true
	for i, pc := range p.Children {
		if pc.IsGeneric() {
			continue // marked by perChild[i] == nil
		}
		perChild[i] = bindGroup(m, e.Kids[i], pc, limit)
		if len(perChild[i]) == 0 {
			return nil
		}
		if len(perChild[i]) > 1 {
			single = false
		}
	}
	if single {
		b := newBinding(e)
		for i, opts := range perChild {
			if opts == nil {
				b.Kids[i] = m.LeafRef(e.Kids[i])
			} else {
				b.Kids[i] = opts[0]
			}
		}
		return []*memo.BoundExpr{b}
	}
	// Multi-binding case: enumerate the cartesian product lexicographically
	// (first child most significant — the same order the old level-wise
	// product produced) and stop at limit. Since every child contributes at
	// least one option, the first `limit` products only ever draw from the
	// first `limit` options of each child, so truncating here is equivalent
	// to the old per-level truncation.
	for i, opts := range perChild {
		if opts == nil {
			perChild[i] = []*memo.BoundExpr{m.LeafRef(e.Kids[i])}
		}
	}
	if len(perChild) == 1 {
		out := make([]*memo.BoundExpr, 0, min(len(perChild[0]), limit))
		for _, a := range perChild[0] {
			if len(out) >= limit {
				break
			}
			nb := newBinding(e)
			nb.Kids[0] = a
			out = append(out, nb)
		}
		return out
	}
	out := make([]*memo.BoundExpr, 0, min(len(perChild[0])*len(perChild[1]), limit))
	for _, a := range perChild[0] {
		if len(out) >= limit {
			break
		}
		for _, b := range perChild[1] {
			if len(out) >= limit {
				break
			}
			nb := newBinding(e)
			nb.Kids[0], nb.Kids[1] = a, b
			out = append(out, nb)
		}
	}
	return out
}

// newBinding allocates a binding for memo expression e together with its kid
// slots in a single object: operator arity never exceeds 2, so the BoundExpr
// and its Kids backing array always fit one allocation. The caller fills
// b.Kids[0..arity-1].
func newBinding(e *memo.MExpr) *memo.BoundExpr {
	buf := &struct {
		b    memo.BoundExpr
		kids [2]*memo.BoundExpr
	}{b: memo.BoundExpr{Node: e.Node, Group: e.Group, Src: e}}
	buf.b.Kids = buf.kids[:len(e.Kids):len(e.Kids)]
	return &buf.b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func bindGroup(m *memo.Memo, g memo.GroupID, p *Pattern, limit int) []*memo.BoundExpr {
	if p.IsGeneric() {
		return []*memo.BoundExpr{m.LeafRef(g)}
	}
	var out []*memo.BoundExpr
	for _, e := range m.Group(g).Exprs {
		if len(out) >= limit {
			break
		}
		out = append(out, bindExpr(m, e, p, limit-len(out))...)
	}
	return out
}
