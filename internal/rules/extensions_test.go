package rules

import (
	"testing"

	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/scalar"
)

func TestRegistryWithExtensionsShape(t *testing.T) {
	reg := RegistryWithExtensions()
	if got := len(reg.Exploration()); got != 34 {
		t.Errorf("exploration rules = %d, want 34", got)
	}
	for _, id := range []ID{31, 32, 33, 34} {
		if _, err := reg.ByID(id); err != nil {
			t.Errorf("extension rule %d missing: %v", id, err)
		}
	}
	// DefaultRegistry must stay at 30: the paper's experiments index the
	// first n exploration rules.
	if got := len(DefaultRegistry().Exploration()); got != 30 {
		t.Errorf("default exploration rules = %d, want 30", got)
	}
}

// buildFKJoinMemo builds Project(customer ⋈ nation ON c_nationkey =
// n_nationkey) projecting customer columns only — the shape rule 31
// eliminates.
func buildFKJoinMemo(t *testing.T) (*memo.Memo, *memo.MExpr) {
	t.Helper()
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	cust, err := md.AddTable("customer")
	if err != nil {
		t.Fatal(err)
	}
	nat, err := md.AddTable("nation")
	if err != nil {
		t.Fatal(err)
	}
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{cust, nat},
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: cust.Cols[2]}, R: &scalar.ColRef{ID: nat.Cols[0]}}}
	proj := &logical.Expr{Op: logical.OpProject, Children: []*logical.Expr{join},
		Projs: []logical.ProjItem{
			{Out: cust.Cols[1], E: &scalar.ColRef{ID: cust.Cols[1]}},
		}}
	m := memo.New(md)
	root := m.Insert(proj)
	m.SetRoot(root)
	return m, m.Group(root).Exprs[0]
}

func TestEliminateFKJoinFires(t *testing.T) {
	m, e := buildFKJoinMemo(t)
	ctx := &Context{Memo: m}
	reg := RegistryWithExtensions()
	r31, _ := reg.ByID(31)
	binds := Bind(m, e, r31.Pattern())
	if len(binds) == 0 {
		t.Fatal("pattern did not bind")
	}
	subs := r31.(ExplorationRule).Apply(ctx, binds[0])
	if len(subs) != 1 {
		t.Fatalf("expected 1 substitute, got %d", len(subs))
	}
	if subs[0].Node.Op != logical.OpProject {
		t.Errorf("substitute root = %s, want Project", subs[0].Node.Op)
	}
	if !subs[0].Kids[0].IsLeaf() {
		t.Error("substitute child should be the fact group")
	}
}

func TestEliminateFKJoinRefusesNonFK(t *testing.T) {
	// Join on a non-FK column pair must not be eliminated.
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	cust, _ := md.AddTable("customer")
	nat, _ := md.AddTable("nation")
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{cust, nat},
		// c_custkey = n_nationkey: no declared FK.
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: cust.Cols[0]}, R: &scalar.ColRef{ID: nat.Cols[0]}}}
	proj := &logical.Expr{Op: logical.OpProject, Children: []*logical.Expr{join},
		Projs: []logical.ProjItem{{Out: cust.Cols[1], E: &scalar.ColRef{ID: cust.Cols[1]}}}}
	m := memo.New(md)
	root := m.Insert(proj)
	e := m.Group(root).Exprs[0]
	ctx := &Context{Memo: m}
	reg := RegistryWithExtensions()
	r31, _ := reg.ByID(31)
	for _, b := range Bind(m, e, r31.Pattern()) {
		if subs := r31.(ExplorationRule).Apply(ctx, b); len(subs) != 0 {
			t.Fatal("rule fired without a declared FK")
		}
	}
}

func TestEliminateFKJoinRefusesDimColumns(t *testing.T) {
	// Projection reading dim columns blocks elimination.
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	cust, _ := md.AddTable("customer")
	nat, _ := md.AddTable("nation")
	join := &logical.Expr{Op: logical.OpJoin, Children: []*logical.Expr{cust, nat},
		On: &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: cust.Cols[2]}, R: &scalar.ColRef{ID: nat.Cols[0]}}}
	proj := &logical.Expr{Op: logical.OpProject, Children: []*logical.Expr{join},
		Projs: []logical.ProjItem{{Out: nat.Cols[1], E: &scalar.ColRef{ID: nat.Cols[1]}}}}
	m := memo.New(md)
	root := m.Insert(proj)
	e := m.Group(root).Exprs[0]
	ctx := &Context{Memo: m}
	reg := RegistryWithExtensions()
	r31, _ := reg.ByID(31)
	for _, b := range Bind(m, e, r31.Pattern()) {
		if subs := r31.(ExplorationRule).Apply(ctx, b); len(subs) != 0 {
			t.Fatal("rule fired although the projection reads dim columns")
		}
	}
}

func TestOrExpansionShape(t *testing.T) {
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	nat, _ := md.AddTable("nation")
	f1 := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: nat.Cols[2]}, R: &scalar.Const{D: datum.NewInt(1)}}
	f2 := &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: nat.Cols[2]}, R: &scalar.Const{D: datum.NewInt(2)}}
	sel := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{nat},
		Filter: &scalar.Or{Kids: []scalar.Expr{f1, f2}}}
	m := memo.New(md)
	root := m.Insert(sel)
	e := m.Group(root).Exprs[0]
	ctx := &Context{Memo: m}
	reg := RegistryWithExtensions()
	r33, _ := reg.ByID(33)
	binds := Bind(m, e, r33.Pattern())
	if len(binds) != 1 {
		t.Fatalf("bindings = %d", len(binds))
	}
	subs := r33.(ExplorationRule).Apply(ctx, binds[0])
	if len(subs) != 1 || subs[0].Node.Op != logical.OpUnionAll {
		t.Fatalf("expected a UnionAll substitute, got %v", subs)
	}
	if !m.InsertSubstitute(subs[0], root) {
		t.Error("substitute not inserted")
	}
}

func TestSplitSelect(t *testing.T) {
	md := logical.NewMetadata(catalog.LoadTPCH(catalog.DefaultTPCHConfig()))
	nat, _ := md.AddTable("nation")
	f1 := &scalar.Cmp{Op: scalar.CmpGT, L: &scalar.ColRef{ID: nat.Cols[0]}, R: &scalar.Const{D: datum.NewInt(1)}}
	f2 := &scalar.Cmp{Op: scalar.CmpLT, L: &scalar.ColRef{ID: nat.Cols[0]}, R: &scalar.Const{D: datum.NewInt(9)}}
	sel := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{nat},
		Filter: &scalar.And{Kids: []scalar.Expr{f1, f2}}}
	m := memo.New(md)
	root := m.Insert(sel)
	e := m.Group(root).Exprs[0]
	ctx := &Context{Memo: m}
	reg := RegistryWithExtensions()
	r34, _ := reg.ByID(34)
	subs := r34.(ExplorationRule).Apply(ctx, Bind(m, e, r34.Pattern())[0])
	if len(subs) != 1 || subs[0].Node.Op != logical.OpSelect || subs[0].Kids[0].Node.Op != logical.OpSelect {
		t.Fatalf("expected Select(Select(...)), got %v", subs)
	}
	// Single-conjunct selects must not split.
	sel2 := &logical.Expr{Op: logical.OpSelect, Children: []*logical.Expr{nat.Clone()}, Filter: f1}
	root2 := m.Insert(sel2)
	e2 := m.Group(root2).Exprs[0]
	if subs := r34.(ExplorationRule).Apply(ctx, Bind(m, e2, r34.Pattern())[0]); len(subs) != 0 {
		t.Error("single conjunct must not split")
	}
}
