package rules

import (
	"strings"
	"testing"

	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
)

func noopApply(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr { return nil }
func noopImpl(ctx *Context, e *memo.MExpr) []*physical.Expr       { return nil }

func mustPanic(t *testing.T, wantSubstr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want panic containing %q", wantSubstr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, wantSubstr) {
			t.Fatalf("panic = %v, want containing %q", r, wantSubstr)
		}
	}()
	f()
}

// Rule definitions fail at construction, not later inside the optimizer's
// binder: a bad custom rule panics the moment it is built.
func TestNewExplorationRuleValidates(t *testing.T) {
	mustPanic(t, "nil pattern", func() {
		NewExplorationRule(901, "NilPattern", nil, noopApply)
	})
	mustPanic(t, "nil substitution function", func() {
		NewExplorationRule(901, "NilApply", P(logical.OpSelect, Any()), nil)
	})
	mustPanic(t, "arity", func() {
		NewExplorationRule(901, "BadArity", P(logical.OpJoin, Any()), noopApply)
	})
	mustPanic(t, "generic placeholder", func() {
		NewExplorationRule(901, "GenericRoot", Any(), noopApply)
	})
	mustPanic(t, "empty name", func() {
		NewExplorationRule(901, "", P(logical.OpSelect, Any()), noopApply)
	})
	// A well-formed definition constructs fine and declares no produces.
	r := NewExplorationRule(901, "OK", P(logical.OpSelect, Any()), noopApply)
	if ps := r.(Producer).Produces(); ps != nil {
		t.Errorf("NewExplorationRule declared produces %v, want none", ps)
	}
}

func TestNewImplementationRuleValidates(t *testing.T) {
	mustPanic(t, "nil pattern", func() {
		NewImplementationRule(902, "NilPattern", nil, noopImpl)
	})
	mustPanic(t, "nil substitution function", func() {
		NewImplementationRule(902, "NilImpl", P(logical.OpSelect, Any()), nil)
	})
}

func TestNewExplorationRuleProducingValidates(t *testing.T) {
	mustPanic(t, "produces", func() {
		NewExplorationRuleProducing(903, "BadProduces", P(logical.OpSelect, Any()),
			[]*Pattern{P(logical.OpJoin, Any())}, noopApply)
	})
	r := NewExplorationRuleProducing(903, "OK", P(logical.OpSelect, Any()),
		[]*Pattern{P(logical.OpSelect, Any())}, noopApply)
	ps := r.(Producer).Produces()
	if len(ps) != 1 || ps[0].String() != "Select(*)" {
		t.Errorf("Produces() = %v, want [Select(*)]", ps)
	}
}

// badPatternRule bypasses the constructors to hand NewRegistry a malformed
// pattern directly — the registry must still reject it.
type badPatternRule struct{ info }

func TestNewRegistryValidatesPatterns(t *testing.T) {
	mustPanic(t, "arity", func() {
		NewRegistry(badPatternRule{info{
			id: 904, name: "Smuggled", kind: KindExploration,
			pattern: P(logical.OpJoin, Any()),
		}})
	})
}

func TestNewRegistryPanicsOnDuplicateName(t *testing.T) {
	a := NewExplorationRule(905, "SameName", P(logical.OpSelect, Any()), noopApply)
	b := NewExplorationRule(906, "SameName", P(logical.OpProject, Any()), noopApply)
	mustPanic(t, "duplicate rule name", func() { NewRegistry(a, b) })
}

// TestBuiltinsDeclareProduces: every built-in exploration rule (core set
// and extensions) declares its output shapes — the invariant the static
// analyzer's missing-produces warning rests on.
func TestBuiltinsDeclareProduces(t *testing.T) {
	var all []ExplorationRule
	all = append(all, ExplorationRules()...)
	all = append(all, ExtensionRules()...)
	for _, r := range all {
		ps := r.(Producer).Produces()
		if len(ps) == 0 {
			t.Errorf("builtin rule %s(#%d) declares no produces", r.Name(), r.ID())
			continue
		}
		for _, p := range ps {
			if err := ValidatePattern(p); err != nil {
				t.Errorf("rule %s(#%d) produces invalid shape %s: %v", r.Name(), r.ID(), p, err)
			}
		}
	}
}
