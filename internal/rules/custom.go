package rules

import (
	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
)

// NewExplorationRule builds a custom exploration rule. This is the
// extensibility hook: downstream users (and the fault-injection examples)
// can register additional rules alongside the built-in set.
func NewExplorationRule(id ID, name string, pattern *Pattern,
	apply func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr) ExplorationRule {
	return &explRule{
		info:  info{id: id, name: name, kind: KindExploration, pattern: pattern},
		apply: apply,
	}
}

// NewImplementationRule builds a custom implementation rule.
func NewImplementationRule(id ID, name string, pattern *Pattern,
	implement func(ctx *Context, e *memo.MExpr) []*physical.Expr) ImplementationRule {
	return &implRule{
		info: info{id: id, name: name, kind: KindImplementation, pattern: pattern},
		impl: implement,
	}
}

// RegistryWith returns a registry holding the default rule set plus the
// given extra rules.
func RegistryWith(extra ...Rule) *Registry {
	var all []Rule
	for _, r := range ExplorationRules() {
		all = append(all, r)
	}
	for _, r := range ImplementationRules() {
		all = append(all, r)
	}
	all = append(all, extra...)
	return NewRegistry(all...)
}
