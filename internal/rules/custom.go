package rules

import (
	"fmt"

	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
)

// validateDefinition rejects malformed custom-rule definitions at
// construction time, so a nil pattern or missing substitution fails where
// the rule is defined rather than later inside the optimizer's binder.
func validateDefinition(id ID, name string, pattern *Pattern, fnNil bool) {
	if name == "" {
		panic(fmt.Sprintf("rules: rule #%d has an empty name", id))
	}
	if fnNil {
		panic(fmt.Sprintf("rules: rule %s(#%d) has a nil substitution function", name, id))
	}
	if err := ValidatePattern(pattern); err != nil {
		panic(fmt.Sprintf("rules: rule %s(#%d): %v", name, id, err))
	}
}

// NewExplorationRule builds a custom exploration rule. This is the
// extensibility hook: downstream users (and the fault-injection examples)
// can register additional rules alongside the built-in set. It panics on a
// nil or malformed pattern and on a nil apply function. The returned rule
// declares no produced shapes; use NewExplorationRuleProducing when the
// static analyzer should see through the rule.
func NewExplorationRule(id ID, name string, pattern *Pattern,
	apply func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr) ExplorationRule {
	validateDefinition(id, name, pattern, apply == nil)
	return &explRule{
		info:  info{id: id, name: name, kind: KindExploration, pattern: pattern},
		apply: apply,
	}
}

// NewExplorationRuleProducing is NewExplorationRule with declared output
// shapes (see Producer): internal/rulecheck's termination and composability
// analyses treat the rule like a built-in instead of flagging it opaque.
func NewExplorationRuleProducing(id ID, name string, pattern *Pattern, produces []*Pattern,
	apply func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr) ExplorationRule {
	validateDefinition(id, name, pattern, apply == nil)
	for _, p := range produces {
		if err := ValidatePattern(p); err != nil {
			panic(fmt.Sprintf("rules: rule %s(#%d) produces: %v", name, id, err))
		}
	}
	return &explRule{
		info:  info{id: id, name: name, kind: KindExploration, pattern: pattern, produces: produces},
		apply: apply,
	}
}

// NewImplementationRule builds a custom implementation rule. It panics on a
// nil or malformed pattern and on a nil implement function.
func NewImplementationRule(id ID, name string, pattern *Pattern,
	implement func(ctx *Context, e *memo.MExpr) []*physical.Expr) ImplementationRule {
	validateDefinition(id, name, pattern, implement == nil)
	return &implRule{
		info: info{id: id, name: name, kind: KindImplementation, pattern: pattern},
		impl: implement,
	}
}

// RegistryWith returns a registry holding the default rule set plus the
// given extra rules.
func RegistryWith(extra ...Rule) *Registry {
	var all []Rule
	for _, r := range ExplorationRules() {
		all = append(all, r)
	}
	for _, r := range ImplementationRules() {
		all = append(all, r)
	}
	all = append(all, extra...)
	return NewRegistry(all...)
}

// Extend returns a registry holding every rule of base plus the extra rules
// appended in order. Unlike RegistryWith, which always starts from the
// default rule set, Extend composes with any base — a mutant registry, an
// already-extended one — which is what lets the check and verify commands
// combine a fault-injected registry with the EET rule pack. Duplicate ids or
// names panic via NewRegistry, mirroring the other constructors.
func Extend(base *Registry, extra ...Rule) *Registry {
	all := append([]Rule(nil), base.All()...)
	all = append(all, extra...)
	return NewRegistry(all...)
}

// RegistryReplacing returns a registry holding the default rule set with each
// rule in repl substituted in place (matched by ID), plus the extra rules
// appended at the end. The substitute occupies the original rule's slot in
// definition order, which matters because the implementor breaks equal-cost
// ties by definition order: an interposed rule competes exactly as the
// original did, while an appended one would lose every tie. This is the
// interposition seam used by fault injection (internal/mutate) to shadow one
// rule with a deliberately wrong variant. It panics if an ID in repl matches
// no default rule, mirroring NewRegistry's handling of definition errors.
func RegistryReplacing(repl map[ID]Rule, extra ...Rule) *Registry {
	pending := make(map[ID]Rule, len(repl))
	for id, r := range repl {
		pending[id] = r
	}
	var all []Rule
	add := func(r Rule) {
		if sub, ok := pending[r.ID()]; ok {
			delete(pending, r.ID())
			r = sub
		}
		all = append(all, r)
	}
	for _, r := range ExplorationRules() {
		add(r)
	}
	for _, r := range ImplementationRules() {
		add(r)
	}
	for id := range pending {
		panic(fmt.Sprintf("rules: RegistryReplacing: no default rule with id %d", id))
	}
	all = append(all, extra...)
	return NewRegistry(all...)
}
