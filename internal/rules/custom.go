package rules

import (
	"fmt"

	"qtrtest/internal/memo"
	"qtrtest/internal/physical"
)

// NewExplorationRule builds a custom exploration rule. This is the
// extensibility hook: downstream users (and the fault-injection examples)
// can register additional rules alongside the built-in set.
func NewExplorationRule(id ID, name string, pattern *Pattern,
	apply func(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr) ExplorationRule {
	return &explRule{
		info:  info{id: id, name: name, kind: KindExploration, pattern: pattern},
		apply: apply,
	}
}

// NewImplementationRule builds a custom implementation rule.
func NewImplementationRule(id ID, name string, pattern *Pattern,
	implement func(ctx *Context, e *memo.MExpr) []*physical.Expr) ImplementationRule {
	return &implRule{
		info: info{id: id, name: name, kind: KindImplementation, pattern: pattern},
		impl: implement,
	}
}

// RegistryWith returns a registry holding the default rule set plus the
// given extra rules.
func RegistryWith(extra ...Rule) *Registry {
	var all []Rule
	for _, r := range ExplorationRules() {
		all = append(all, r)
	}
	for _, r := range ImplementationRules() {
		all = append(all, r)
	}
	all = append(all, extra...)
	return NewRegistry(all...)
}

// RegistryReplacing returns a registry holding the default rule set with each
// rule in repl substituted in place (matched by ID), plus the extra rules
// appended at the end. The substitute occupies the original rule's slot in
// definition order, which matters because the implementor breaks equal-cost
// ties by definition order: an interposed rule competes exactly as the
// original did, while an appended one would lose every tie. This is the
// interposition seam used by fault injection (internal/mutate) to shadow one
// rule with a deliberately wrong variant. It panics if an ID in repl matches
// no default rule, mirroring NewRegistry's handling of definition errors.
func RegistryReplacing(repl map[ID]Rule, extra ...Rule) *Registry {
	pending := make(map[ID]Rule, len(repl))
	for id, r := range repl {
		pending[id] = r
	}
	var all []Rule
	add := func(r Rule) {
		if sub, ok := pending[r.ID()]; ok {
			delete(pending, r.ID())
			r = sub
		}
		all = append(all, r)
	}
	for _, r := range ExplorationRules() {
		add(r)
	}
	for _, r := range ImplementationRules() {
		add(r)
	}
	for id := range pending {
		panic(fmt.Sprintf("rules: RegistryReplacing: no default rule with id %d", id))
	}
	all = append(all, extra...)
	return NewRegistry(all...)
}
