package rules

import (
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/scalar"
)

// Extension rules implement §7's "rules whose exercising is dependent on the
// properties of the schema as well as the database instance": they consult
// declared foreign keys, not just the logical tree. They ship outside
// DefaultRegistry so that the paper's 30-rule experiments are unaffected;
// build a registry with RegistryWithExtensions to enable them.
//
// IDs 31+ continue the exploration range.

// ExtensionRules returns the schema-dependent exploration rules.
func ExtensionRules() []ExplorationRule {
	return []ExplorationRule{
		expl(31, "EliminateFKJoin", P(logical.OpProject, P(logical.OpJoin, Any(), Any())),
			applyEliminateFKJoin).producing(P(logical.OpProject, Any())),
		expl(32, "EliminateFKSemiJoin", P(logical.OpSemiJoin, Any(), Any()),
			applyEliminateFKSemiJoin).producing(P(logical.OpProject, Any())),
		expl(33, "OrExpansion", P(logical.OpSelect, Any()),
			applyOrExpansion).producing(
			P(logical.OpUnionAll, P(logical.OpSelect, Any()), P(logical.OpSelect, Any()))),
		expl(34, "SplitSelect", P(logical.OpSelect, Any()),
			applySplitSelect).producing(P(logical.OpSelect, P(logical.OpSelect, Any()))),
	}
}

// RegistryWithExtensions returns the default rule set plus the extension
// pack.
func RegistryWithExtensions() *Registry {
	var extra []Rule
	for _, r := range ExtensionRules() {
		extra = append(extra, r)
	}
	return RegistryWith(extra...)
}

// fkJoinIsLossless reports whether the equi predicate equates a declared
// foreign key of the fact Get with the primary key of the dim Get, so that
// every fact row joins exactly one dim row (FK integrity plus PK
// uniqueness). Both sides must be base-table Gets for the schema metadata to
// apply.
func fkJoinIsLossless(ctx *Context, fact, dim *memo.BoundExpr, pairs [][2]scalar.ColumnID) bool {
	factGet := leafGet(ctx, fact)
	dimGet := leafGet(ctx, dim)
	if factGet == nil || dimGet == nil {
		return false
	}
	factTbl, err := ctx.MD().Catalog().Table(factGet.Node.Table)
	if err != nil {
		return false
	}
	dimTbl, err := ctx.MD().Catalog().Table(dimGet.Node.Table)
	if err != nil {
		return false
	}
	for _, fk := range factTbl.ForeignKeys {
		if fk.RefTable != dimTbl.Name || len(fk.Columns) != len(pairs) {
			continue
		}
		// The referenced columns must be the dim's primary key.
		if len(fk.RefColumns) != len(dimTbl.PrimaryKey) {
			continue
		}
		pkOK := true
		for i := range fk.RefColumns {
			if fk.RefColumns[i] != dimTbl.PrimaryKey[i] {
				pkOK = false
				break
			}
		}
		if !pkOK {
			continue
		}
		// Every pair must map fk.Columns[i] -> fk.RefColumns[i].
		matched := 0
		for i, fc := range fk.Columns {
			fidx := factTbl.ColumnIndex(fc)
			ridx := dimTbl.ColumnIndex(fk.RefColumns[i])
			if fidx < 0 || ridx < 0 {
				break
			}
			want := [2]scalar.ColumnID{factGet.Node.Cols[fidx], dimGet.Node.Cols[ridx]}
			for _, p := range pairs {
				if p == want {
					matched++
					break
				}
			}
		}
		if matched == len(fk.Columns) {
			return true
		}
	}
	return false
}

// leafGet returns the single Get expression of a bound leaf's group, if any.
func leafGet(ctx *Context, b *memo.BoundExpr) *memo.MExpr {
	if !b.IsLeaf() {
		if b.Node.Op == logical.OpGet {
			return b.Src
		}
		return nil
	}
	for _, e := range ctx.Memo.Group(b.Group).Exprs {
		if e.Op() == logical.OpGet {
			return e
		}
	}
	return nil
}

// applyEliminateFKJoin: Project(fact ⋈ dim) → Project(fact) when the join
// equates the fact's declared FK with the dim's PK and the projection reads
// only fact columns. FK integrity guarantees every fact row matches; PK
// uniqueness guarantees it matches once — the join is a no-op.
func applyEliminateFKJoin(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
	join := b.Kids[0]
	var out []*memo.BoundExpr
	for side := 0; side < 2; side++ {
		fact, dim := join.Kids[side], join.Kids[1-side]
		factCols := ctx.Memo.Cols(fact)
		needed := make(scalar.ColSet)
		for _, it := range b.Node.Projs {
			it.E.Cols(needed)
		}
		if !needed.SubsetOf(factCols) {
			continue
		}
		pairs, rest := logical.EquiJoinCols(join.Node.On, factCols, ctx.Memo.Cols(dim))
		if len(pairs) == 0 || len(rest) > 0 {
			continue
		}
		if !fkJoinIsLossless(ctx, fact, dim, pairs) {
			continue
		}
		out = append(out, memo.NewBound(&logical.Expr{
			Op: logical.OpProject, Projs: b.Node.Projs,
		}, fact))
	}
	return out
}

// applyEliminateFKSemiJoin: fact SEMI dim on fk = pk → every fact row has a
// match, so the semi join passes everything through (emitted as an identity
// projection, since a bare group reference cannot be a substitute).
func applyEliminateFKSemiJoin(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
	fact, dim := b.Kids[0], b.Kids[1]
	factCols := ctx.Memo.Cols(fact)
	pairs, rest := logical.EquiJoinCols(b.Node.On, factCols, ctx.Memo.Cols(dim))
	if len(pairs) == 0 || len(rest) > 0 {
		return nil
	}
	if !fkJoinIsLossless(ctx, fact, dim, pairs) {
		return nil
	}
	return []*memo.BoundExpr{
		memo.NewBound(&logical.Expr{
			Op: logical.OpProject, Projs: colRefProjs(factCols.Sorted()),
		}, fact),
	}
}

// applyOrExpansion: σ(f1 ∨ f2)(a) → σ(f1)(a) ∪ALL σ(f2 ∧ ¬T(f1))(a), where
// ¬T(f1) = "f1 is not true" = (NOT f1) OR (f1 IS NULL). The branches are
// disjoint, so UNION ALL preserves multiplicities under SQL three-valued
// logic.
func applyOrExpansion(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
	or, ok := b.Node.Filter.(*scalar.Or)
	if !ok || len(or.Kids) < 2 {
		return nil
	}
	f1 := or.Kids[0]
	f2 := scalar.Expr(&scalar.Or{Kids: or.Kids[1:]})
	if len(or.Kids) == 2 {
		f2 = or.Kids[1]
	}
	child := b.Kids[0]
	cols := ctx.Memo.Cols(child).Sorted()
	notTrue := &scalar.Or{Kids: []scalar.Expr{
		&scalar.Not{Kid: f1},
		&scalar.IsNull{Kid: f1},
	}}
	left := memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: f1}, child)
	right := memo.NewBound(&logical.Expr{
		Op: logical.OpSelect, Filter: &scalar.And{Kids: []scalar.Expr{f2, notTrue}},
	}, child)
	return []*memo.BoundExpr{
		memo.NewBound(&logical.Expr{
			Op:        logical.OpUnionAll,
			OutCols:   cols,
			InputCols: [][]scalar.ColumnID{cols, cols},
		}, left, right),
	}
}

// applySplitSelect: σ(f1 ∧ f2)(a) → σ(f1)(σ(f2)(a)) — the inverse of
// SelectMerge, included to widen the search space around selections.
func applySplitSelect(ctx *Context, b *memo.BoundExpr) []*memo.BoundExpr {
	conj := scalar.Conjuncts(b.Node.Filter)
	if len(conj) < 2 {
		return nil
	}
	inner := memo.NewBound(&logical.Expr{
		Op: logical.OpSelect, Filter: scalar.MakeAnd(conj[1:]),
	}, b.Kids[0])
	return []*memo.BoundExpr{
		memo.NewBound(&logical.Expr{Op: logical.OpSelect, Filter: conj[0]}, inner),
	}
}
