package qtrtest_test

import (
	"testing"

	"qtrtest"
)

// TestVerifyCleanImpliesFuzzClean is the property linking the static and
// dynamic halves of the framework: if the small-scope semantic verifier
// finds nothing wrong with the pristine registry, a fuzz campaign over the
// same rules must not either. A finding on exactly one side would mean
// either the verifier's instantiation vocabulary lost the shape the fuzzer
// stumbled into (a small-scope-hypothesis violation worth a new canonical
// instance) or the fuzzer's oracles drifted from the executor semantics the
// verifier pins. Run on two seeds so the fuzz half is not a single-sample
// fluke.
//
// Both halves run with the independent reference backend ("ref") as a third
// oracle: every bounded-exhaustive verify pair and every fuzz base query is
// additionally replayed on the reference interpreter, so the property also
// covers faults shared by the optimizer and both production executors —
// exactly the class the self-differential comparison is structurally blind
// to. BackendChecks must be nonzero on both halves or the replay silently
// went missing and the extended property is vacuous.
func TestVerifyCleanImpliesFuzzClean(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign in -short mode")
	}
	vrep, err := qtrtest.VerifyRules(qtrtest.VerifyConfig{Backend: "ref"})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(vrep.Findings) != 0 {
		for _, f := range vrep.Findings {
			t.Errorf("verify flagged pristine rule #%d %s: %s", f.Rule, f.RuleName, f.Detail)
		}
		t.Fatal("premise failed: pristine registry is not verify-clean under the reference backend")
	}
	if vrep.BackendChecks == 0 {
		t.Error("verify replayed no pairs on the reference backend; the cross-engine half is vacuous")
	}
	for _, seed := range []int64{1, 42} {
		db := qtrtest.OpenTPCH(0.5, seed)
		frep, err := db.Fuzz(qtrtest.FuzzConfig{Seed: seed, N: 96, DB: "tpch", Backend: "ref"})
		if err != nil {
			t.Fatalf("seed %d: fuzz: %v", seed, err)
		}
		for _, f := range frep.Findings {
			t.Errorf("seed %d: fuzz found %s fault the verifier missed: %s\n  repro: %s",
				seed, f.Kind, f.Detail, f.Repro)
		}
		if frep.PlanExecutions == 0 {
			t.Errorf("seed %d: fuzz executed no plans; the property check is vacuous", seed)
		}
		if frep.BackendChecks == 0 {
			t.Errorf("seed %d: fuzz replayed no base queries on the reference backend", seed)
		}
	}
}
