package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"qtrtest"
	"qtrtest/internal/bind"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/opt"
)

// benchReport is the qtrtest-bench/v1 document written by `qtrtest bench`.
// The schema is documented in DESIGN.md §9.
type benchReport struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	Commit     string       `json:"commit,omitempty"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Baseline optionally carries the same measurements taken at an earlier
	// commit for before/after comparison. The bench subcommand never fills
	// it; the committed report records the pre-overhaul numbers here.
	Baseline *baselineBlock `json:"baseline,omitempty"`
}

type baselineBlock struct {
	Commit     string       `json:"commit"`
	Note       string       `json:"note,omitempty"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

type benchEntry struct {
	Name            string  `json:"name"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	MemoExprsPerSec float64 `json:"memo_exprs_per_sec,omitempty"`
}

// benchQuery mirrors the repository benchmark BenchmarkOptimize so the two
// harnesses measure the same workload.
const benchQuery = `SELECT c_nationkey, COUNT(*) AS cnt
	FROM customer JOIN orders ON c_custkey = o_custkey
	WHERE o_totalprice > 1000 GROUP BY c_nationkey`

// cmdBench measures the optimizer hot path and the end-to-end graph-build
// pipeline with testing.Benchmark and writes a qtrtest-bench/v1 JSON report.
// With -exec it instead measures the execution engines (batch vs the row
// baseline; see benchExecReport) and defaults the output to BENCH_exec.json.
// With -campaign it measures the campaign pipelines with the plan-result
// cache on (Benchmarks) against cache off (Baseline; see benchCampaignReport)
// and defaults the output to BENCH_campaign.json.
func cmdBench(db *qtrtest.DB, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("o", "", "output file (- for stdout; defaults per mode)")
	commit := fs.String("commit", "", "optional commit label recorded in the report")
	graph := fs.Bool("graph", true, "include the end-to-end graph-build benchmark (slow)")
	execMode := fs.Bool("exec", false, "benchmark the execution engines (row vs batch) instead of the optimizer")
	campaignMode := fs.Bool("campaign", false, "benchmark the campaign pipelines with the result cache on vs off instead of the optimizer")
	rounds := fs.Int("rounds", 3, "interleaved measurement rounds per arm in -exec/-campaign mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *execMode && *campaignMode {
		return fmt.Errorf("bench: -exec and -campaign are mutually exclusive")
	}
	if *execMode {
		if *out == "" {
			*out = "BENCH_exec.json"
		}
		report, err := benchExecReport(*commit, *rounds)
		if err != nil {
			return err
		}
		return writeBenchReport(report, *out)
	}
	if *campaignMode {
		if *out == "" {
			*out = "BENCH_campaign.json"
		}
		report, err := benchCampaignReport(*commit, *rounds)
		if err != nil {
			return err
		}
		return writeBenchReport(report, *out)
	}
	if *out == "" {
		*out = "BENCH_optimizer.json"
	}

	bound, err := bind.BindSQL(benchQuery, db.Catalog)
	if err != nil {
		return err
	}
	// Count memo expressions once: the workload is deterministic, so every
	// iteration builds the same memo.
	probe, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		return err
	}
	memoExprs := probe.Memo.NumExprs()

	optRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	report := benchReport{
		Schema:    "qtrtest-bench/v1",
		GoVersion: runtime.Version(),
		Commit:    *commit,
		Benchmarks: []benchEntry{{
			Name:            "Optimize",
			Iterations:      optRes.N,
			NsPerOp:         float64(optRes.NsPerOp()),
			BytesPerOp:      optRes.AllocedBytesPerOp(),
			AllocsPerOp:     optRes.AllocsPerOp(),
			MemoExprsPerSec: float64(memoExprs) * 1e9 / float64(optRes.NsPerOp()),
		}},
	}

	if *graph {
		campRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := suite.Generate(db.Optimizer,
					suite.PairTargets(db.ExplorationRuleIDs(5)),
					suite.GenConfig{K: 3, Seed: 9, ExtraOps: 3, Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := g.TopKIndependent(); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks, benchEntry{
			Name:        "ParallelGraphBuild/workers=1",
			Iterations:  campRes.N,
			NsPerOp:     float64(campRes.NsPerOp()),
			BytesPerOp:  campRes.AllocedBytesPerOp(),
			AllocsPerOp: campRes.AllocsPerOp(),
		})
	}

	return writeBenchReport(&report, *out)
}

// writeBenchReport marshals a qtrtest-bench/v1 report to the given path, or
// stdout for "-".
func writeBenchReport(report *benchReport, out string) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(report.Benchmarks))
	return nil
}
