package main

import (
	"flag"
	"fmt"
	"os"

	"qtrtest"
)

// verifyRegistry resolves the registry a verify run targets: the active
// registry by default, a mutant's registry with -mutant, either one extended
// with the EET rule pack with -eet. The returned config carries the labels
// the report and repro lines embed.
func verifyRegistry(db *qtrtest.DB, mutant string, eet bool) (qtrtest.VerifyConfig, error) {
	cfg := qtrtest.VerifyConfig{Registry: db.Registry, EET: eet}
	if mutant != "" {
		ms, err := qtrtest.MutantsByKind(qtrtest.MutantKind(mutant))
		if err != nil {
			return cfg, err
		}
		cfg.Registry = ms[0].Registry()
		cfg.Mutant = mutant
		if eet {
			cfg.Registry = qtrtest.RegistryExtend(cfg.Registry, eetRulePack()...)
		}
	} else if eet {
		cfg.Registry = qtrtest.RegistryWithEET()
	}
	return cfg, nil
}

// eetRulePack widens the concrete EET rule slice to the []Rule variadic base
// RegistryExtend takes.
func eetRulePack() []qtrtest.Rule {
	eet := qtrtest.EETRules()
	out := make([]qtrtest.Rule, len(eet))
	for i, r := range eet {
		out[i] = r
	}
	return out
}

// cmdVerify runs the small-scope semantic rule verifier: every rule's
// pattern is instantiated canonically, executed against every bounded tiny
// database on both sides of the rewrite, and compared under the correct
// order/limit sensitivity. The report is byte-identical for every -workers
// value, so a finding's repro line replays anywhere; the command exits
// nonzero when any rule is flagged, making it a CI tripwire like fuzz.
func cmdVerify(db *qtrtest.DB, args []string, workers int, rc *qtrtest.ResultCache, backend string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	ruleIDs := fs.String("rules", "", "comma-separated rule ids to verify (default: all)")
	mutant := fs.String("mutant", "", "verify a mutant registry instead (fault-injection self-test)")
	eet := fs.Bool("eet", false, "include the EET exploration-rule candidates")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fs.Parse(args)

	cfg, err := verifyRegistry(db, *mutant, *eet)
	if err != nil {
		return err
	}
	cfg.Workers = workers
	cfg.Cache = rc
	cfg.Backend = backend
	if cfg.Rules, err = parseIDs(*ruleIDs); err != nil {
		return err
	}
	rep, err := qtrtest.VerifyRules(cfg)
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		rep.Print(os.Stdout)
	}
	if len(rep.Findings) > 0 {
		return fmt.Errorf("verify: %d rule(s) flagged", len(rep.Findings))
	}
	return nil
}
