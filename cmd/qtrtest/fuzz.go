package main

import (
	"flag"
	"fmt"
	"os"

	"qtrtest"
)

// cmdFuzz runs the plan-guided metamorphic fuzzing campaign. The report is
// byte-identical for every -workers value at a fixed seed, so a finding's
// repro line replays anywhere; the command exits nonzero when the campaign
// reports findings, making it usable as a CI tripwire.
func cmdFuzz(db *qtrtest.DB, args []string, schema string, seed int64, workers int, rc *qtrtest.ResultCache, backend string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	n := fs.Int("n", 500, "number of queries to generate")
	timeout := fs.Duration("timeout", 0, "stop at the next round boundary after this budget (0 = none; a timed-out report is not workers-deterministic)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	mutant := fs.String("mutant", "", "fuzz a mutant registry instead (fault-injection self-test)")
	randcat := fs.Bool("randcat", false, "fuzz a seeded random catalog instead of the -db database")
	eet := fs.Bool("eet", false, "enable the expression-level equivalence (EET) rewrites")
	stop := fs.Bool("stop-on-finding", false, "stop at the first round boundary with a finding")
	fs.Parse(args)

	cfg := qtrtest.FuzzConfig{
		Seed: seed, N: *n, Workers: workers, Timeout: *timeout,
		DB: schema, EET: *eet, StopOnFinding: *stop, Cache: rc,
		Backend: backend,
	}
	if *mutant != "" {
		ms, err := qtrtest.MutantsByKind(qtrtest.MutantKind(*mutant))
		if err != nil {
			return err
		}
		cfg.Registry = ms[0].Registry()
		cfg.Mutant = *mutant
	}
	var rep *qtrtest.FuzzReport
	var err error
	if *randcat {
		// A nil catalog with DB unset makes the fuzzer derive a random
		// catalog from the seed; bypass db so its catalog is not injected.
		cfg.DB = ""
		cfg.Catalog = nil
		if cfg.Registry == nil {
			cfg.Registry = db.Registry
		}
		rep, err = qtrtest.FuzzRun(cfg)
	} else {
		rep, err = db.Fuzz(cfg)
	}
	if err != nil {
		return err
	}
	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		rep.Print(os.Stdout)
	}
	if len(rep.Findings) > 0 {
		return fmt.Errorf("fuzz: %d finding(s)", len(rep.Findings))
	}
	return nil
}
