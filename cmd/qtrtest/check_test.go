package main

import (
	"strings"
	"testing"

	"qtrtest"
)

func checkDB(t *testing.T) *qtrtest.DB {
	t.Helper()
	return qtrtest.OpenTPCH(0.01, 1)
}

// TestCheckMutantWithEETExitsNonzero pins the exit-code fix: -mutant and
// -eet used to be mutually exclusive, so lint findings surfaced only by
// checking a mutant registry extended with the EET rule pack could never
// drive a nonzero exit. Now the combination is accepted and a finding on
// the combined registry must return an error (exit 1 at the CLI).
func TestCheckMutantWithEETExitsNonzero(t *testing.T) {
	db := checkDB(t)
	if err := cmdCheck(db, []string{"-mutant", "wrong-agg", "-eet"}, 2, nil, ""); err == nil {
		t.Fatal("check -mutant wrong-agg -eet returned nil; lint findings on the combined registry must exit nonzero")
	}
}

// TestCheckEETCleanExitsZero: the pristine registry extended with the EET
// pack lints clean, so the same flag combination without a mutant must
// return nil.
func TestCheckEETCleanExitsZero(t *testing.T) {
	db := checkDB(t)
	if err := cmdCheck(db, []string{"-eet"}, 2, nil, ""); err != nil {
		t.Fatalf("check -eet on the pristine registry failed: %v", err)
	}
}

// TestCheckXMLExclusive: -xml still rejects the registry-selection flags,
// since an XML export has no mutant or EET variant to resolve.
func TestCheckXMLExclusive(t *testing.T) {
	db := checkDB(t)
	err := cmdCheck(db, []string{"-xml", "nope.xml", "-mutant", "wrong-agg"}, 2, nil, "")
	if err == nil || !strings.Contains(err.Error(), "-xml cannot be combined") {
		t.Fatalf("check -xml -mutant: err = %v, want the exclusivity error", err)
	}
}

// TestCheckDeepPassFlagsMutant: check -verify runs the small-scope semantic
// verifier as a deep pass; a semantically wrong mutant that the structural
// linter alone cannot catch must still fail the command.
func TestCheckDeepPassFlagsMutant(t *testing.T) {
	db := checkDB(t)
	if err := cmdCheck(db, []string{"-mutant", "limit-off-by-one", "-verify"}, 4, nil, ""); err == nil {
		t.Fatal("check -mutant limit-off-by-one -verify returned nil; the deep pass missed the mutant")
	}
	if err := cmdCheck(db, []string{"-verify"}, 4, nil, ""); err != nil {
		t.Fatalf("check -verify on the pristine registry failed: %v", err)
	}
}

// TestVerifyCommandExitCodes: the standalone verify command errors exactly
// when a rule is flagged.
func TestVerifyCommandExitCodes(t *testing.T) {
	db := checkDB(t)
	err := cmdVerify(db, []string{"-mutant", "limit-off-by-one", "-rules", "117"}, 2, nil, "")
	if err == nil || !strings.Contains(err.Error(), "1 rule(s) flagged") {
		t.Fatalf("verify on the limit mutant: err = %v, want a flagged-rule error", err)
	}
	if err := cmdVerify(db, []string{"-rules", "116,117"}, 2, nil, ""); err != nil {
		t.Fatalf("verify on pristine rules 116,117 failed: %v", err)
	}
}
