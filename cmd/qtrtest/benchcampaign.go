package main

import (
	"fmt"
	"runtime"
	"testing"

	"qtrtest"
)

// benchCampaignReport measures the suite-validation campaign with the
// plan-result cache on against the same campaign with it off, and returns a
// qtrtest-bench/v1 report with the cached numbers in Benchmarks and the
// uncached numbers in the Baseline block — the same before/after layout
// BENCH_exec.json uses for batch-versus-row.
//
// The workload is the campaign whose structure actually repeats executions:
// validating the two compressed suites (SMC, then TOPK) against the
// database. Both algorithms select from the same edge universe, so their
// suites overlap heavily in base plans and edge plans — the second suite's
// validation is mostly cache hits. Validation is measured at workers=1 and
// workers=8; the parallel arm additionally exercises the cache's
// single-flight path under real contention.
//
// The other campaign types are deliberately not in the report, with the
// numbers that justify leaving them out (DESIGN.md §14): mutation campaigns
// regenerate suites per mutant registry inside the campaign, so optimizer
// time dominates and the cache trims allocations ~2× but wall time only
// ~1.1×; fuzzing generates fresh random queries whose plans rarely recur
// (~1.1×; its intra-query duplicates die at the identical-plan skip before
// the cache); verify executes micro-plans against ≤3-row databases where
// keying overhead outweighs the executions memoized (<1×). All are
// cache-correct — in-tree differential tests pin byte-identical reports —
// they just are not where the cache's time lives.
//
// Each iteration validates both suites against a fresh cache, so the
// speedup measured is the intra-campaign overlap the cache actually
// exploits — never the degenerate case of re-running an identical campaign
// against a warm cache. Workloads are measured `rounds` times per arm with
// the arms interleaved round by round, so drift hits both sides equally,
// and the report records the median round.
func benchCampaignReport(commit string, rounds int) (*benchReport, error) {
	// A larger database makes each plan execution carry real work while
	// suite generation (outside the measured loop) stays constant.
	db := qtrtest.OpenTPCH(60, 42)
	g, err := db.GenerateSuite(qtrtest.PairTargets(db.ExplorationRuleIDs(10)),
		qtrtest.SuiteConfig{K: 4, Seed: 9, ExtraOps: 3, Workers: 4})
	if err != nil {
		return nil, err
	}
	var sols []*qtrtest.Solution
	for _, build := range []func() (*qtrtest.Solution, error){g.SetMultiCover, g.TopKIndependent} {
		sol, err := build()
		if err != nil {
			return nil, err
		}
		sols = append(sols, sol)
	}

	newCache := func(cached bool) *qtrtest.ResultCache {
		if !cached {
			return nil
		}
		return qtrtest.NewResultCache(0)
	}
	validate := func(workers int) func(cached bool, b *testing.B) {
		return func(cached bool, b *testing.B) {
			g.SetWorkers(workers)
			for i := 0; i < b.N; i++ {
				g.SetCache(newCache(cached))
				for _, sol := range sols {
					if _, err := g.Run(sol, db.Optimizer, db.Catalog); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	type workload struct {
		name string
		run  func(cached bool, b *testing.B)
	}
	workloads := []workload{
		{name: "Campaign/SuiteValidate/workers=1", run: validate(1)},
		{name: "Campaign/SuiteValidate/workers=8", run: validate(8)},
	}

	arms := []bool{false, true}
	samples := make(map[string]map[bool][]benchEntry)
	for _, w := range workloads {
		samples[w.name] = make(map[bool][]benchEntry)
	}
	for r := 0; r < rounds; r++ {
		for _, cached := range arms {
			for _, w := range workloads {
				w, cached := w, cached
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					w.run(cached, b)
				})
				samples[w.name][cached] = append(samples[w.name][cached], benchEntry{
					Name:        w.name,
					Iterations:  res.N,
					NsPerOp:     float64(res.NsPerOp()),
					BytesPerOp:  res.AllocedBytesPerOp(),
					AllocsPerOp: res.AllocsPerOp(),
				})
			}
		}
	}

	report := &benchReport{
		Schema:    "qtrtest-bench/v1",
		GoVersion: runtime.Version(),
		Commit:    commit,
		Baseline: &baselineBlock{
			Commit: commit,
			Note: fmt.Sprintf("result cache off (direct execution) on the same commit; "+
				"median of %d rounds, arms interleaved per round, fresh cache per campaign iteration", rounds),
		},
	}
	for _, w := range workloads {
		report.Benchmarks = append(report.Benchmarks, medianEntry(samples[w.name][true]))
		report.Baseline.Benchmarks = append(report.Baseline.Benchmarks, medianEntry(samples[w.name][false]))
	}
	return report, nil
}
