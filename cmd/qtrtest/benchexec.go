package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"qtrtest"
	"qtrtest/internal/catalog"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/logical"
	"qtrtest/internal/physical"
	"qtrtest/internal/scalar"
)

// benchExecReport measures the execution engines — the batch engine against
// the retained row engine — and returns a qtrtest-bench/v1 report with the
// batch numbers in Benchmarks and the row numbers in the Baseline block.
//
// Workloads: one plan per hot operator (scan, filter, project, hash join,
// hash agg) over a 50k-row synthetic catalog, mirroring the repository
// benchmark BenchmarkEngineOps, plus the end-to-end execution campaign
// (suite Run over a scale-10 TPC-H catalog, mirroring
// BenchmarkSuiteRunEngines). Each workload is measured `rounds` times per
// engine with the engines interleaved round by round, so drift hits both
// sides equally, and the report records the median round.
func benchExecReport(commit string, rounds int) (*benchReport, error) {
	cat := execBenchCatalog(50000)
	plans := execBenchPlans()

	db := qtrtest.OpenTPCH(10, 42)
	g, err := db.GenerateSuite(qtrtest.PairTargets(db.ExplorationRuleIDs(5)),
		qtrtest.SuiteConfig{K: 3, Seed: 9, ExtraOps: 3, Workers: 1})
	if err != nil {
		return nil, err
	}
	sol, err := g.TopKIndependent()
	if err != nil {
		return nil, err
	}

	type workload struct {
		name string
		run  func(eng exec.Engine, b *testing.B)
	}
	workloads := make([]workload, 0, len(plans)+1)
	for _, p := range plans {
		plan := p.plan
		workloads = append(workloads, workload{
			name: "Exec/" + p.name,
			run: func(eng exec.Engine, b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := exec.RunEngine(eng, plan, cat, 0, 0); err != nil {
						b.Fatal(err)
					}
				}
			},
		})
	}
	workloads = append(workloads, workload{
		name: "Campaign/SuiteRun",
		run: func(eng exec.Engine, b *testing.B) {
			g.SetEngine(eng)
			for i := 0; i < b.N; i++ {
				if _, err := g.Run(sol, db.Optimizer, db.Catalog); err != nil {
					b.Fatal(err)
				}
			}
		},
	})

	engines := []exec.Engine{exec.EngineRow, exec.EngineBatch}
	samples := make(map[string]map[exec.Engine][]benchEntry)
	for _, w := range workloads {
		samples[w.name] = make(map[exec.Engine][]benchEntry)
	}
	for r := 0; r < rounds; r++ {
		for _, eng := range engines {
			for _, w := range workloads {
				w := w
				eng := eng
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					w.run(eng, b)
				})
				samples[w.name][eng] = append(samples[w.name][eng], benchEntry{
					Name:        w.name,
					Iterations:  res.N,
					NsPerOp:     float64(res.NsPerOp()),
					BytesPerOp:  res.AllocedBytesPerOp(),
					AllocsPerOp: res.AllocsPerOp(),
				})
			}
		}
	}

	report := &benchReport{
		Schema:    "qtrtest-bench/v1",
		GoVersion: runtime.Version(),
		Commit:    commit,
		Baseline: &baselineBlock{
			Commit: commit,
			Note: fmt.Sprintf("row engine (EngineRow) on the same commit; "+
				"median of %d rounds, engines interleaved per round", rounds),
		},
	}
	for _, w := range workloads {
		report.Benchmarks = append(report.Benchmarks, medianEntry(samples[w.name][exec.EngineBatch]))
		report.Baseline.Benchmarks = append(report.Baseline.Benchmarks, medianEntry(samples[w.name][exec.EngineRow]))
	}
	return report, nil
}

// medianEntry returns the sample with the median ns/op, keeping that round's
// iteration/allocation figures together rather than mixing metrics across
// rounds.
func medianEntry(s []benchEntry) benchEntry {
	sorted := append([]benchEntry(nil), s...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NsPerOp < sorted[j].NsPerOp })
	return sorted[len(sorted)/2]
}

// execBenchCatalog mirrors the repository benchmark's synthetic
// fact/dimension catalog (internal/exec benchCatalog): "f" with rows fact
// rows, "d" a tenth of that, three int columns each.
func execBenchCatalog(rows int) *catalog.Catalog {
	r := rand.New(rand.NewSource(1))
	c := catalog.New()
	for _, name := range []string{"f", "d"} {
		n := rows
		if name == "d" {
			n = rows / 10
		}
		t := &catalog.Table{Name: name, Columns: []catalog.Column{
			{Name: "a", Type: datum.TypeInt}, {Name: "b", Type: datum.TypeInt}, {Name: "c", Type: datum.TypeInt},
		}}
		for i := 0; i < n; i++ {
			t.Rows = append(t.Rows, datum.Row{
				datum.NewInt(int64(r.Intn(1000))), datum.NewInt(int64(r.Intn(100))), datum.NewInt(int64(i)),
			})
		}
		t.ComputeStats()
		c.Add(t)
	}
	return c
}

type execBenchPlan struct {
	name string
	plan *physical.Expr
}

// execBenchPlans mirrors internal/exec benchPlans: per-operator plans from
// bare scan up to aggregation over a join, over execBenchCatalog's schema.
func execBenchPlans() []execBenchPlan {
	scanF := &physical.Expr{Op: physical.OpScan, Table: "f", Cols: []scalar.ColumnID{1, 2, 3}}
	scanD := &physical.Expr{Op: physical.OpScan, Table: "d", Cols: []scalar.ColumnID{4, 5, 6}}
	filter := &physical.Expr{Op: physical.OpFilter, Children: []*physical.Expr{scanF},
		Filter: &scalar.Cmp{Op: scalar.CmpLT, L: &scalar.ColRef{ID: 2}, R: &scalar.Const{D: datum.NewInt(50)}}}
	project := &physical.Expr{Op: physical.OpProject, Children: []*physical.Expr{filter},
		Projs: []logical.ProjItem{
			{Out: 9, E: &scalar.Arith{Op: scalar.ArithAdd, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 3}}},
			{Out: 10, E: &scalar.ColRef{ID: 2}},
		}}
	join := &physical.Expr{Op: physical.OpHashJoin, JoinType: physical.JoinInner,
		Children: []*physical.Expr{filter, scanD},
		On:       &scalar.Cmp{Op: scalar.CmpEQ, L: &scalar.ColRef{ID: 1}, R: &scalar.ColRef{ID: 4}},
		EquiLeft: []scalar.ColumnID{1}, EquiRight: []scalar.ColumnID{4}}
	agg := &physical.Expr{Op: physical.OpHashAgg, Children: []*physical.Expr{join},
		GroupCols: []scalar.ColumnID{5},
		Aggs: []scalar.Agg{
			{Op: scalar.AggCountStar, Out: 20},
			{Op: scalar.AggSum, Arg: &scalar.ColRef{ID: 3}, Out: 21},
		}}
	return []execBenchPlan{
		{"scan", scanF}, {"filter", filter}, {"project", project}, {"join", join}, {"agg", agg},
	}
}
