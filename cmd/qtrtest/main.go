// Command qtrtest is the command-line interface to the rule-testing
// framework: list rules and patterns, generate rule-targeted queries, run
// queries, and build/compress/execute correctness test suites.
//
// Usage:
//
//	qtrtest rules
//	qtrtest patterns [-rule 14]
//	qtrtest generate -rule 14 [-pair 1] [-method pattern|random] [-extra 3]
//	qtrtest ruleset -q "SELECT ..."
//	qtrtest explain -q "SELECT ..." [-disable 5,6]
//	qtrtest analyze -q "SELECT ..."
//	qtrtest query -q "SELECT ..."
//	qtrtest suite -n 10 -k 5 [-pairs] [-algo topk|smc|baseline|matching] [-validate]
//	qtrtest interactions -n 8 [-per 3]
//	qtrtest mutate [-k 4] [-targets 0] [-extra 0] [-kinds a,b] [-diff]
//	qtrtest check [-json] [-matrix] [-xml file] [-mutant kind] [-eet]
//	qtrtest fuzz [-n 500] [-timeout 30s] [-json] [-mutant kind] [-randcat] [-eet] [-stop-on-finding]
//	qtrtest bench [-o BENCH_optimizer.json] [-graph=false]
//	qtrtest bench -exec [-o BENCH_exec.json] [-rounds 3]
//	qtrtest bench -campaign [-o BENCH_campaign.json] [-rounds 3]
//
// Global flags (before the subcommand): -scale, -seed, -db tpch|star, -ext,
// -workers (worker pool size for the parallel campaign engine; suites,
// solutions and validation reports are identical for every value),
// -backend (an independent execution backend — e.g. "ref", the naive
// reference interpreter — cross-checked against every base execution in
// suite -validate, mutate, check -verify, verify and fuzz),
// -cache/-cachemb (campaign-wide plan-result cache; reports are
// byte-identical with it on or off), -cachestats (print cache hit/miss/
// eviction counters to stderr after the run),
// -cpuprofile/-memprofile (write pprof profiles for the run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"qtrtest"
	"qtrtest/internal/prof"
)

func main() {
	scale := flag.Float64("scale", 1.0, "test database row scale")
	seed := flag.Int64("seed", 42, "random seed")
	schema := flag.String("db", "tpch", "test database: tpch or star")
	ext := flag.Bool("ext", false, "enable the schema-dependent extension rules (31-34)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for suite generation/compression/execution (results are identical for any value)")
	backend := flag.String("backend", "", "independent cross-check backend (e.g. ref); replays base executions on it in suite -validate, mutate, check -verify, verify and fuzz")
	cacheOn := flag.Bool("cache", true, "memoize plan-execution results across the campaign (reports are byte-identical either way)")
	cacheMB := flag.Int("cachemb", 256, "result-cache memory budget in MiB")
	cacheStats := flag.Bool("cachestats", false, "print result-cache hit/miss/eviction counters to stderr after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var db *qtrtest.DB
	switch *schema {
	case "tpch":
		db = qtrtest.OpenTPCH(*scale, *seed)
	case "star":
		db = qtrtest.OpenStar(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "qtrtest: unknown database %q (tpch or star)\n", *schema)
		os.Exit(2)
	}
	if *ext {
		db = qtrtest.Open(db.Catalog, qtrtest.RegistryWithExtensions())
	}
	profile, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtrtest:", err)
		os.Exit(1)
	}
	// A nil cache is valid everywhere and means direct execution. Stats stay
	// on stderr so JSON reports on stdout remain byte-identical either way.
	var rc *qtrtest.ResultCache
	if *cacheOn {
		rc = qtrtest.NewResultCache(int64(*cacheMB) << 20)
	}
	cmd, rest := args[0], args[1:]
	unknown := false
	switch cmd {
	case "rules":
		err = cmdRules(db)
	case "patterns":
		err = cmdPatterns(db, rest)
	case "generate":
		err = cmdGenerate(db, rest, *seed)
	case "ruleset":
		err = cmdRuleSet(db, rest)
	case "explain":
		err = cmdExplain(db, rest)
	case "analyze":
		err = cmdAnalyze(db, rest)
	case "query":
		err = cmdQuery(db, rest)
	case "suite":
		err = cmdSuite(db, rest, *seed, *workers, rc, *backend)
	case "interactions":
		err = cmdInteractions(db, rest, *seed)
	case "mutate":
		err = cmdMutate(db, rest, *seed, *workers, rc, *backend)
	case "check":
		err = cmdCheck(db, rest, *workers, rc, *backend)
	case "verify":
		err = cmdVerify(db, rest, *workers, rc, *backend)
	case "fuzz":
		err = cmdFuzz(db, rest, *schema, *seed, *workers, rc, *backend)
	case "bench":
		err = cmdBench(db, rest)
	default:
		unknown = true
	}
	if perr := profile.Stop(); perr != nil && err == nil {
		err = perr
	}
	if *cacheStats {
		st := rc.Stats()
		fmt.Fprintf(os.Stderr, "cachestats: hits=%d misses=%d evictions=%d entries=%d bytes=%d\n",
			st.Hits, st.Misses, st.Evictions, st.Entries, st.Bytes)
	}
	if unknown {
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qtrtest:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qtrtest [-scale F] [-seed S] [-db tpch|star] [-ext] [-workers W] [-backend ref] [-cache=false] [-cachemb M] [-cachestats] [-cpuprofile F] [-memprofile F] <rules|patterns|generate|ruleset|explain|analyze|query|suite|interactions|mutate|check|verify|fuzz|bench> [flags]")
	os.Exit(2)
}

func cmdRules(db *qtrtest.DB) error {
	fmt.Printf("%-4s %-15s %-28s %s\n", "id", "kind", "name", "pattern")
	for _, r := range db.Registry.All() {
		fmt.Printf("%-4d %-15s %-28s %s\n", r.ID(), r.Kind(), r.Name(), r.Pattern())
	}
	return nil
}

func cmdPatterns(db *qtrtest.DB, args []string) error {
	fs := flag.NewFlagSet("patterns", flag.ExitOnError)
	rule := fs.Int("rule", 0, "rule id (0 = all, as a ruleset document)")
	fs.Parse(args)
	if *rule == 0 {
		data, err := db.Registry.ExportXML()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	r, err := db.Registry.ByID(qtrtest.RuleID(*rule))
	if err != nil {
		return err
	}
	data, err := qtrtest.PatternXML(r.Pattern())
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func cmdGenerate(db *qtrtest.DB, args []string, seed int64) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	rule := fs.Int("rule", 0, "target rule id")
	pair := fs.Int("pair", 0, "second rule id for a rule pair")
	method := fs.String("method", "pattern", "pattern or random")
	extra := fs.Int("extra", 0, "extra random operators")
	trials := fs.Int("trials", 512, "max trials")
	relevant := fs.Bool("relevant", false, "require the rule to change the chosen plan (§7)")
	interact := fs.Bool("interact", false, "require -pair to fire on -rule's output (§7)")
	fs.Parse(args)
	if *rule == 0 {
		return fmt.Errorf("generate: -rule is required")
	}
	gen, err := db.NewGenerator(qtrtest.GenConfig{Seed: seed, MaxTrials: *trials, ExtraOps: *extra})
	if err != nil {
		return err
	}
	var q *qtrtest.GeneratedQuery
	switch {
	case *relevant:
		q, err = gen.GenerateRelevant(qtrtest.RuleID(*rule))
	case *interact:
		if *pair == 0 {
			return fmt.Errorf("generate: -interact requires -pair")
		}
		q, err = gen.GenerateInteractionPair(qtrtest.RuleID(*rule), qtrtest.RuleID(*pair))
	case *method == "random":
		target := []qtrtest.RuleID{qtrtest.RuleID(*rule)}
		if *pair != 0 {
			target = append(target, qtrtest.RuleID(*pair))
		}
		q, err = gen.GenerateRandom(target)
	case *pair != 0:
		q, err = gen.GeneratePatternPair(qtrtest.RuleID(*rule), qtrtest.RuleID(*pair))
	default:
		q, err = gen.GeneratePattern(qtrtest.RuleID(*rule))
	}
	if err != nil {
		return err
	}
	fmt.Printf("-- trials: %d  elapsed: %s  ops: %d  est. cost: %.1f\n",
		q.Trials, q.Elapsed, q.Tree.CountOps(), q.Cost)
	fmt.Printf("-- RuleSet: %v\n", q.RuleSet.Sorted())
	fmt.Println(q.SQL)
	return nil
}

func cmdRuleSet(db *qtrtest.DB, args []string) error {
	fs := flag.NewFlagSet("ruleset", flag.ExitOnError)
	q := fs.String("q", "", "SQL query")
	fs.Parse(args)
	if *q == "" {
		return fmt.Errorf("ruleset: -q is required")
	}
	rs, err := db.RuleSetOf(*q)
	if err != nil {
		return err
	}
	for _, id := range rs.Sorted() {
		r, err := db.Registry.ByID(id)
		if err != nil {
			return err
		}
		fmt.Printf("%-4d %-15s %s\n", id, r.Kind(), r.Name())
	}
	return nil
}

func parseIDs(s string) ([]qtrtest.RuleID, error) {
	if s == "" {
		return nil, nil
	}
	var out []qtrtest.RuleID
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad rule id %q", part)
		}
		out = append(out, qtrtest.RuleID(n))
	}
	return out, nil
}

func cmdExplain(db *qtrtest.DB, args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	q := fs.String("q", "", "SQL query")
	disable := fs.String("disable", "", "comma-separated rule ids to disable")
	fs.Parse(args)
	if *q == "" {
		return fmt.Errorf("explain: -q is required")
	}
	ids, err := parseIDs(*disable)
	if err != nil {
		return err
	}
	plan, err := db.Explain(*q, ids...)
	if err != nil {
		return err
	}
	fmt.Print(plan)
	return nil
}

func cmdAnalyze(db *qtrtest.DB, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	q := fs.String("q", "", "SQL query")
	disable := fs.String("disable", "", "comma-separated rule ids to disable")
	fs.Parse(args)
	if *q == "" {
		return fmt.Errorf("analyze: -q is required")
	}
	ids, err := parseIDs(*disable)
	if err != nil {
		return err
	}
	rows, stats, err := db.Analyze(*q, ids...)
	if err != nil {
		return err
	}
	fmt.Print(stats)
	fmt.Printf("(%d rows, worst q-error %.1f)\n", len(rows), stats.MaxQError())
	return nil
}

func cmdQuery(db *qtrtest.DB, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	q := fs.String("q", "", "SQL query")
	fs.Parse(args)
	if *q == "" {
		return fmt.Errorf("query: -q is required")
	}
	rows, names, err := db.Query(*q)
	if err != nil {
		return err
	}
	fmt.Print(qtrtest.FormatRows(rows, names))
	fmt.Printf("(%d rows)\n", len(rows))
	return nil
}

// cmdInteractions prints the observed rule-interaction matrix (§7: rule r2
// exercised on an expression created by rule r1) over a coverage campaign.
func cmdInteractions(db *qtrtest.DB, args []string, seed int64) error {
	fs := flag.NewFlagSet("interactions", flag.ExitOnError)
	n := fs.Int("n", 8, "number of exploration rules")
	per := fs.Int("per", 3, "queries generated per rule")
	fs.Parse(args)
	gen, err := db.NewGenerator(qtrtest.GenConfig{Seed: seed, MaxTrials: 256, ExtraOps: 2})
	if err != nil {
		return err
	}
	ids := db.ExplorationRuleIDs(*n)
	seen := make(map[[2]qtrtest.RuleID]int)
	for _, id := range ids {
		for k := 0; k < *per; k++ {
			q, err := gen.GeneratePattern(id)
			if err != nil {
				continue
			}
			res, err := db.Optimizer.Optimize(q.Tree, q.MD, qtrtest.OptimizeOptions{})
			if err != nil {
				return err
			}
			for pair := range res.Interactions {
				seen[pair]++
			}
		}
	}
	fmt.Printf("observed rule interactions over %d queries (creator -> fired, count):\n", len(ids)**per)
	for _, a := range ids {
		for _, b := range ids {
			if c := seen[[2]qtrtest.RuleID{a, b}]; c > 0 {
				ra, _ := db.Registry.ByID(a)
				rb, _ := db.Registry.ByID(b)
				fmt.Printf("  %-26s -> %-26s %d\n", ra.Name(), rb.Name(), c)
			}
		}
	}
	return nil
}

// cmdMutate runs the rule-mutation fault-injection campaign: one full
// generate/compress/execute pipeline per injected rule fault, reporting the
// mutation score of the uncompressed and compressed suites.
func cmdMutate(db *qtrtest.DB, args []string, seed int64, workers int, rc *qtrtest.ResultCache, backend string) error {
	fs := flag.NewFlagSet("mutate", flag.ExitOnError)
	k := fs.Int("k", 12, "test-suite size per target")
	targets := fs.Int("targets", 0, "extra healthy-rule targets beside the mutated rule (slow at full scale: wrong plans can be cross products)")
	extra := fs.Int("extra", 0, "extra random operators per query")
	trials := fs.Int("trials", 512, "max generation trials per query")
	kinds := fs.String("kinds", "", "comma-separated mutant kinds (default: all)")
	diff := fs.Bool("diff", false, "print per-mutant plan-diff evidence")
	fs.Parse(args)
	cfg := qtrtest.MutationConfig{
		K: *k, Targets: *targets, ExtraOps: *extra, Seed: seed,
		MaxTrials: *trials, Workers: workers, Cache: rc, Backend: backend,
	}
	if *kinds != "" {
		var ks []qtrtest.MutantKind
		for _, part := range strings.Split(*kinds, ",") {
			ks = append(ks, qtrtest.MutantKind(strings.TrimSpace(part)))
		}
		ms, err := qtrtest.MutantsByKind(ks...)
		if err != nil {
			return err
		}
		cfg.Mutants = ms
	}
	score, err := db.MutationCampaign(cfg)
	if err != nil {
		return err
	}
	score.Print(os.Stdout, *diff)
	return nil
}

// cmdCheck runs the static rule/pattern linter (internal/rulecheck) over
// the active registry — or over an XML ruleset export, or over a mutant's
// registry as a self-test probe, optionally extended with the EET rule pack
// — and exits nonzero on findings. With -verify it additionally runs the
// small-scope semantic verifier over the same live registry as a deep pass.
func cmdCheck(db *qtrtest.DB, args []string, workers int, rc *qtrtest.ResultCache, backend string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	matrix := fs.Bool("matrix", false, "also print the composability feeds relation")
	xmlFile := fs.String("xml", "", "check a ruleset XML export instead of the active registry")
	mutant := fs.String("mutant", "", "check the registry of the given mutant kind instead (fault-injection self-test)")
	eet := fs.Bool("eet", false, "check the registry extended with the EET exploration-rule candidates")
	deep := fs.Bool("verify", false, "additionally run the small-scope semantic verifier (deep pass)")
	fs.Parse(args)
	if *xmlFile != "" && (*mutant != "" || *eet || *deep) {
		return fmt.Errorf("check: -xml cannot be combined with -mutant, -eet or -verify")
	}

	var rep *qtrtest.CheckReport
	var vcfg qtrtest.VerifyConfig
	if *xmlFile != "" {
		data, err := os.ReadFile(*xmlFile)
		if err != nil {
			return err
		}
		ex, err := qtrtest.ParseExportXML(data)
		if err != nil {
			return err
		}
		rep = qtrtest.CheckExportedRules(ex)
	} else {
		var err error
		if vcfg, err = verifyRegistry(db, *mutant, *eet); err != nil {
			return err
		}
		rep = qtrtest.CheckRules(vcfg.Registry)
	}

	if *asJSON {
		out := rep
		if !*matrix {
			out = &qtrtest.CheckReport{Diagnostics: rep.Diagnostics}
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		for _, d := range rep.Diagnostics {
			fmt.Println(d)
		}
		fmt.Printf("check: %d error(s), %d warning(s), %d info\n",
			rep.Count(qtrtest.CheckError), rep.Count(qtrtest.CheckWarning), rep.Count(qtrtest.CheckInfo))
		if *matrix && rep.Matrix != nil {
			fmt.Print(rep.Matrix)
		}
	}
	lintErr := error(nil)
	if rep.Failed() {
		lintErr = fmt.Errorf("check: %d finding(s)", rep.Count(qtrtest.CheckError)+rep.Count(qtrtest.CheckWarning))
	}
	if *deep {
		vcfg.Workers = workers
		vcfg.Cache = rc
		vcfg.Backend = backend
		vrep, err := qtrtest.VerifyRules(vcfg)
		if err != nil {
			return err
		}
		if !*asJSON {
			vrep.Print(os.Stdout)
		}
		if len(vrep.Findings) > 0 {
			return fmt.Errorf("check: semantic verify flagged %d rule(s)", len(vrep.Findings))
		}
	}
	return lintErr
}

func cmdSuite(db *qtrtest.DB, args []string, seed int64, workers int, rc *qtrtest.ResultCache, backend string) error {
	fs := flag.NewFlagSet("suite", flag.ExitOnError)
	n := fs.Int("n", 10, "number of exploration rules")
	k := fs.Int("k", 5, "test-suite size per target")
	pairs := fs.Bool("pairs", false, "test rule pairs instead of singletons")
	algo := fs.String("algo", "topk", "topk, topk-mono, smc, baseline or matching")
	extra := fs.Int("extra", 3, "extra random operators per query")
	validate := fs.Bool("validate", false, "execute the compressed suite and compare results")
	fs.Parse(args)

	ids := db.ExplorationRuleIDs(*n)
	var targets []qtrtest.Target
	if *pairs {
		targets = qtrtest.PairTargets(ids)
	} else {
		targets = qtrtest.SingletonTargets(ids)
	}
	fmt.Printf("generating suite: %d targets, k=%d ...\n", len(targets), *k)
	g, err := db.GenerateSuite(targets, qtrtest.SuiteConfig{K: *k, Seed: seed, ExtraOps: *extra, Workers: workers})
	if err != nil {
		return err
	}
	var sol *qtrtest.Solution
	switch *algo {
	case "topk":
		sol, err = g.TopKIndependent()
	case "topk-mono":
		sol, err = g.TopKMonotonic()
	case "smc":
		sol, err = g.SetMultiCover()
	case "baseline":
		sol, err = g.Baseline()
	case "matching":
		sol, err = g.MatchingNoShare()
	default:
		return fmt.Errorf("suite: unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	distinct := map[int]bool{}
	for _, a := range sol.Assignments {
		distinct[a.Query] = true
	}
	fmt.Printf("%s: %d assignments over %d distinct queries (of %d generated)\n",
		sol.Name, len(sol.Assignments), len(distinct), len(g.Queries))
	fmt.Printf("total estimated execution cost: %.0f (optimizer calls: %d)\n",
		sol.TotalCost, sol.OptimizerCalls)
	if *validate {
		g.SetCache(rc)
		if err := g.SetBackend(backend); err != nil {
			return err
		}
		rep, err := g.Run(sol, db.Optimizer, db.Catalog)
		if err != nil {
			return err
		}
		fmt.Printf("validation: %d plan executions, %d skipped (identical plans), %d mismatches, %d undetermined\n",
			rep.PlanExecutions, rep.SkippedIdentical, len(rep.Mismatches), len(rep.Undetermined))
		if backend != "" {
			fmt.Printf("backend %s: %d cross-checks, %d disagreements\n",
				backend, rep.BackendChecks, len(rep.BackendDisagreements))
		}
		for _, m := range rep.Mismatches {
			fmt.Printf("  BUG target %s: %s\n      %s\n", m.Target, m.Detail, m.Query.SQL)
		}
		for _, u := range rep.Undetermined {
			fmt.Printf("  UNDETERMINED target %s: %s\n      %s\n", u.Target, u.Detail, u.Query.SQL)
		}
		for _, d := range rep.BackendDisagreements {
			fmt.Printf("  BACKEND DISAGREEMENT: %s\n      %s\n", d.Detail, d.Query.SQL)
		}
	}
	return nil
}
