// Command experiments regenerates the paper's evaluation figures (§6,
// Figures 8–14) plus Figure 15, an extension: the mutation score of the
// correctness oracle under rule-mutation fault injection.
//
// Usage:
//
//	experiments [-fig N] [-quick] [-seed S] [-scale F] [-trials T] [-workers W]
//
// Without -fig, every figure runs in order. -quick shrinks rule counts and
// suite sizes so the whole set finishes in seconds. -workers bounds the
// parallel campaign engine's worker pool (default GOMAXPROCS); the printed
// figure series are identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"qtrtest/internal/experiments"
	"qtrtest/internal/prof"
)

// profSession is the active -cpuprofile/-memprofile session; exitOn flushes
// it so profiles survive an error exit.
var profSession *prof.Session

func main() {
	fig := flag.Int("fig", 0, "figure to run (8-15); 0 runs all")
	quick := flag.Bool("quick", false, "shrink experiment sizes for a fast run")
	seed := flag.Int64("seed", 42, "random seed")
	scale := flag.Float64("scale", 1.0, "TPC-H row scale")
	trials := flag.Int("trials", 256, "max generation trials per target")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "campaign worker pool size (figure series are identical for any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	var perr error
	profSession, perr = prof.Start(*cpuprofile, *memprofile)
	exitOn(perr)

	cfg := experiments.Config{Seed: *seed, ScaleRows: *scale, Quick: *quick, MaxTrials: *trials, Workers: *workers}
	r := experiments.NewRunner(cfg)
	w := os.Stdout

	run := func(n int) bool { return *fig == 0 || *fig == n }
	start := time.Now()

	if run(8) {
		res, err := r.Fig8()
		exitOn(err)
		res.Print(w)
		fmt.Fprintln(w)
	}
	if run(9) || run(10) {
		res, err := r.Fig9And10()
		exitOn(err)
		if run(9) {
			experiments.PrintFig9(w, res)
			fmt.Fprintln(w)
		}
		if run(10) {
			experiments.PrintFig10(w, res)
			fmt.Fprintln(w)
		}
	}
	if run(11) {
		rows, err := r.Fig11()
		exitOn(err)
		experiments.PrintCompression(w, "Figure 11: suite compression, singleton rules (total estimated cost, k=10)", rows, false)
		fmt.Fprintln(w)
	}
	if run(12) {
		rows, err := r.Fig12()
		exitOn(err)
		experiments.PrintCompression(w, "Figure 12: suite compression, rule pairs (total estimated cost, k=10)", rows, false)
		fmt.Fprintln(w)
	}
	if run(13) {
		rows, err := r.Fig13()
		exitOn(err)
		experiments.PrintCompression(w, "Figure 13: suite compression vs test-suite size k (rule pairs)", rows, true)
		fmt.Fprintln(w)
	}
	if run(14) {
		rows, err := r.Fig14()
		exitOn(err)
		experiments.PrintFig14(w, rows)
		fmt.Fprintln(w)
	}
	if run(15) {
		score, err := r.Fig15()
		exitOn(err)
		experiments.PrintFig15(w, score)
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "total experiment time: %s\n", time.Since(start).Round(time.Millisecond))
	exitOn(profSession.Stop())
}

func exitOn(err error) {
	if err != nil {
		if perr := profSession.Stop(); perr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", perr)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
