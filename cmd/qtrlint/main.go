// Command qtrlint is the repository's vet tool: a go/analysis-style driver
// for the custom determinism checks in internal/lint/analyzers. Run it
// through the go command so every package (including test dependencies) is
// typechecked and analyzed:
//
//	go build -o /tmp/qtrlint ./cmd/qtrlint
//	go vet -vettool=/tmp/qtrlint ./...
//
// Suppress an intentional finding with a //qtrlint:allow <analyzer> <reason>
// comment on the offending line or the line above it.
package main

import (
	"qtrtest/internal/lint"
	"qtrtest/internal/lint/analyzers"
)

func main() {
	lint.Main(analyzers.All()...)
}
