// Package qtrtest is a framework for testing query transformation rules,
// reproducing Elmongui, Narasayya and Ramamurthy, "A Framework for Testing
// Query Transformation Rules", SIGMOD 2009.
//
// It bundles a transformation-rule-based query optimizer (memo search over
// 30 exploration + 17 implementation rules), a SQL front end, an in-memory
// execution engine with a TPC-H test database, and — on top — the paper's
// two contributions:
//
//   - rule-targeted query generation: given a rule or rule pair, generate a
//     SQL query that exercises it, by instantiating the rule's pattern
//     (PATTERN) or stochastically (RANDOM);
//   - test-suite compression: build the bipartite rule/query graph and
//     minimize the cost of executing a correctness suite with the
//     SetMultiCover or TopKIndependent algorithms, optionally exploiting
//     cost monotonicity.
//
// Quick start:
//
//	db := qtrtest.OpenTPCH(1.0, 42)
//	gen, _ := db.NewGenerator(qtrtest.GenConfig{Seed: 1})
//	q, _ := gen.GeneratePattern(14) // exercise PushGroupByBelowJoin
//	fmt.Println(q.SQL)
package qtrtest

import (
	"fmt"
	"strings"

	"qtrtest/internal/bind"
	"qtrtest/internal/catalog"
	"qtrtest/internal/core/qgen"
	"qtrtest/internal/core/suite"
	"qtrtest/internal/datum"
	"qtrtest/internal/exec"
	"qtrtest/internal/fuzz"
	"qtrtest/internal/logical"
	"qtrtest/internal/memo"
	"qtrtest/internal/mutate"
	"qtrtest/internal/opt"
	"qtrtest/internal/rescache"
	"qtrtest/internal/rulecheck"
	"qtrtest/internal/rules"
	"qtrtest/internal/scalar"
	"qtrtest/internal/verify"
)

// Re-exported types: the full API of the underlying packages is available
// through these aliases without importing internal paths.
type (
	// Catalog is the test database (schema, data, statistics).
	Catalog = catalog.Catalog
	// Rule is one transformation rule (exploration or implementation).
	Rule = rules.Rule
	// RuleID identifies a rule.
	RuleID = rules.ID
	// RuleSet is a set of rule IDs.
	RuleSet = rules.Set
	// RuleKind distinguishes exploration from implementation rules.
	RuleKind = rules.Kind
	// Registry is the optimizer's rule set R.
	Registry = rules.Registry
	// Pattern is a rule pattern tree.
	Pattern = rules.Pattern
	// Optimizer is the rule-based query optimizer.
	Optimizer = opt.Optimizer
	// OptimizeOptions configures one optimization (disabled rules etc).
	OptimizeOptions = opt.Options
	// OptimizeResult carries the plan, cost and exercised RuleSet.
	OptimizeResult = opt.Result
	// Generator produces rule-targeted queries (§3).
	Generator = qgen.Generator
	// GenConfig tunes a Generator.
	GenConfig = qgen.Config
	// GeneratedQuery is one generated test case.
	GeneratedQuery = qgen.Query
	// Graph is the bipartite rule/query test-suite graph (§4).
	Graph = suite.Graph
	// Target is a rule or rule pair under test.
	Target = suite.Target
	// Solution is a compressed test suite.
	Solution = suite.Solution
	// Report is the outcome of running a test suite.
	Report = suite.Report
	// SuiteConfig configures test-suite generation.
	SuiteConfig = suite.GenConfig
	// Row is a result row.
	Row = datum.Row
	// Datum is a single SQL value.
	Datum = datum.Datum
)

// TPCHConfig re-exports the TPC-H generator configuration.
type TPCHConfig = catalog.TPCHConfig

// Extensibility surface: everything needed to define new transformation
// rules (see examples/bughunt for a worked fault-injection example).
type (
	// LogicalExpr is a logical operator tree node.
	LogicalExpr = logical.Expr
	// LogicalOp enumerates logical operators.
	LogicalOp = logical.Op
	// ScalarExpr is a scalar expression.
	ScalarExpr = scalar.Expr
	// BoundExpr is the rule input/output currency: a pattern binding whose
	// leaves reference memo groups.
	BoundExpr = memo.BoundExpr
	// RuleContext gives rules access to the memo and query metadata.
	RuleContext = rules.Context
)

// Rule-definition helpers, re-exported from the rules and memo packages.
var (
	// NewExplorationRule defines a logical→logical rule.
	NewExplorationRule = rules.NewExplorationRule
	// NewExplorationRuleProducing additionally declares the rule's output
	// shapes, so the static analyzer can see through it.
	NewExplorationRuleProducing = rules.NewExplorationRuleProducing
	// RegistryWith extends the default registry with custom rules.
	RegistryWith = rules.RegistryWith
	// RegistryWithExtensions adds the schema-dependent extension rules
	// (FK join elimination, OR expansion, select splitting; ids 31-34).
	RegistryWithExtensions = rules.RegistryWithExtensions
	// RegistryWithEET adds the expression-level equivalence rewrite
	// candidates lifted from the scalar EET catalog (ids 41-47).
	RegistryWithEET = rules.RegistryWithEET
	// EETRules returns the EET exploration-rule pack itself.
	EETRules = rules.EETRules
	// NewBound builds a substitute node over bound children.
	NewBound = memo.NewBound
	// PatternNode and PatternAny build rule patterns.
	PatternNode = rules.P
	PatternAny  = rules.Any
)

// DB bundles a catalog with an optimizer over the default rule registry; it
// is the entry point for the whole framework.
type DB struct {
	Catalog   *Catalog
	Registry  *Registry
	Optimizer *Optimizer
}

// OpenTPCH creates the default test database: a deterministic scaled-down
// TPC-H instance, with the full 47-rule registry.
func OpenTPCH(scaleRows float64, seed int64) *DB {
	cat := catalog.LoadTPCH(catalog.TPCHConfig{ScaleRows: scaleRows, Seed: seed})
	return Open(cat, rules.DefaultRegistry())
}

// OpenStar creates the secondary test database: a retail star schema (one
// fact table, four dimensions) matching §6.1's "other databases with
// different schemas".
func OpenStar(scaleRows float64, seed int64) *DB {
	cat := catalog.LoadStar(catalog.StarConfig{ScaleRows: scaleRows, Seed: seed})
	return Open(cat, rules.DefaultRegistry())
}

// Open wraps an arbitrary catalog and rule registry.
func Open(cat *Catalog, reg *Registry) *DB {
	return &DB{Catalog: cat, Registry: reg, Optimizer: opt.New(reg, cat)}
}

// Query parses, binds, optimizes and executes a SQL query, returning the
// rows and result column names.
func (db *DB) Query(sqlText string) ([]Row, []string, error) {
	bound, err := bind.BindSQL(sqlText, db.Catalog)
	if err != nil {
		return nil, nil, err
	}
	res, err := db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{})
	if err != nil {
		return nil, nil, err
	}
	rows, err := exec.Run(res.Plan, db.Catalog)
	if err != nil {
		return nil, nil, err
	}
	return rows, bound.OutNames, nil
}

// Optimize returns the optimization result (plan, cost, RuleSet) for a SQL
// query, with the given rules disabled.
func (db *DB) Optimize(sqlText string, disabled ...RuleID) (*OptimizeResult, error) {
	bound, err := bind.BindSQL(sqlText, db.Catalog)
	if err != nil {
		return nil, err
	}
	return db.Optimizer.Optimize(bound.Tree, bound.MD, opt.Options{Disabled: rules.NewSet(disabled...)})
}

// QueryDisabled executes Plan(q, ¬R): the plan obtained with the given
// rules disabled (§2.2).
func (db *DB) QueryDisabled(sqlText string, disabled ...RuleID) ([]Row, error) {
	res, err := db.Optimize(sqlText, disabled...)
	if err != nil {
		return nil, err
	}
	return exec.Run(res.Plan, db.Catalog)
}

// EqualResults reports whether two result sets are equal as multisets — the
// correctness oracle of §2.3.
func EqualResults(a, b []Row) bool { return exec.EqualMultisets(a, b) }

// Mutation-testing surface: seeded rule faults that validate the
// correctness oracle itself (see internal/mutate).
type (
	// Mutant is one injected rule fault.
	Mutant = mutate.Mutant
	// MutantKind names a fault family (e.g. flip-sort-dir).
	MutantKind = mutate.Kind
	// MutationConfig tunes a mutation campaign.
	MutationConfig = mutate.Config
	// MutationScore is a campaign's report: which algorithms' suites caught
	// which injected faults.
	MutationScore = mutate.Score
)

// Mutation-campaign helpers, re-exported from the mutate package.
var (
	// Mutants returns the shipped mutant catalog.
	Mutants = mutate.Mutants
	// MutantsByKind filters the catalog by fault kind.
	MutantsByKind = mutate.ByKind
)

// MutationCampaign runs the full pipeline (generate, compress, execute,
// compare) once per mutant against this database and reports the mutation
// score per suite algorithm.
func (db *DB) MutationCampaign(cfg MutationConfig) (*MutationScore, error) {
	return mutate.Run(db.Catalog, cfg)
}

// Fuzzing surface, re-exported from the fuzz package.
type (
	// FuzzConfig tunes a fuzz campaign (seed, query count, oracles' caps).
	FuzzConfig = fuzz.Config
	// FuzzReport is a campaign's deterministic outcome.
	FuzzReport = fuzz.Report
	// FuzzFinding is one reported fault with its shrunk reproducer.
	FuzzFinding = fuzz.Finding
)

// Fuzzing helpers, re-exported from the fuzz package.
var (
	// RandomCatalog builds the seeded random test database the fuzzer uses
	// when no catalog is supplied (qtrtest fuzz -randcat).
	RandomCatalog = fuzz.RandomCatalog
	// FuzzRun runs a campaign from a raw config (nil Catalog selects the
	// random catalog); db.Fuzz is the database-bound form.
	FuzzRun = fuzz.Run
)

// Fuzz runs a plan-guided metamorphic fuzz campaign against this database:
// random query trees, the differential Plan(q) vs Plan(q,¬R) oracle plus a
// metamorphic-rewrite oracle, coverage-steered generation, and shrunk
// reproducers for every finding. The catalog and registry default to the
// receiver's; cfg.Catalog/cfg.Registry override them (a nil cfg.Catalog with
// cfg.DB == "" would otherwise select the random catalog).
func (db *DB) Fuzz(cfg FuzzConfig) (*FuzzReport, error) {
	if cfg.Catalog == nil {
		cfg.Catalog = db.Catalog
	}
	if cfg.Registry == nil {
		cfg.Registry = db.Registry
	}
	return fuzz.Run(cfg)
}

// Small-scope semantic verification surface (internal/verify): the
// bounded-exhaustive rule verifier behind `qtrtest verify`, which executes
// both sides of every rule rewrite over tiny databases and compares results
// under the §2.3 oracle's sensitivity.
type (
	// VerifyConfig tunes one verification run (registry, rule filter,
	// workers).
	VerifyConfig = verify.Config
	// VerifyReport is a verification run's deterministic outcome.
	VerifyReport = verify.Report
	// VerifyFinding is one verified rule failure with its minimal witness.
	VerifyFinding = verify.Finding
)

// Verification helpers, re-exported from the verify and rules packages.
var (
	// VerifyRules runs the small-scope semantic verifier over a registry.
	VerifyRules = verify.Run
	// RegistryExtend appends extra rules to any base registry (a mutant
	// registry, an extended one), unlike RegistryWith which always starts
	// from the default rule set.
	RegistryExtend = rules.Extend
)

// Result-cache surface (internal/rescache): the campaign-wide plan-result
// cache behind the CLI's -cache/-cachestats flags. One cache can serve any
// mix of campaigns — suite validation (Graph.SetCache), mutation
// (MutationConfig.Cache), fuzzing (FuzzConfig.Cache) and verification
// (VerifyConfig.Cache) — because entries are keyed by plan fingerprint,
// catalog identity, execution caps and engine alone. Every campaign's report
// is byte-identical with and without a cache, at any worker count.
type (
	// ResultCache memoizes plan-execution outcomes (rows or error) across a
	// campaign. A nil *ResultCache is valid and falls through to direct
	// execution.
	ResultCache = rescache.Cache
	// ResultCacheStats is a point-in-time cache statistics snapshot.
	ResultCacheStats = rescache.Stats
)

// NewResultCache builds a bounded result cache; maxBytes <= 0 selects the
// default budget.
var NewResultCache = rescache.New

// RuleSetOf returns RuleSet(q): the rules exercised when optimizing the
// query (§2.2).
func (db *DB) RuleSetOf(sqlText string) (RuleSet, error) {
	res, err := db.Optimize(sqlText)
	if err != nil {
		return nil, err
	}
	return res.RuleSet, nil
}

// Explain renders the chosen plan for a query.
func (db *DB) Explain(sqlText string, disabled ...RuleID) (string, error) {
	res, err := db.Optimize(sqlText, disabled...)
	if err != nil {
		return "", err
	}
	return res.Plan.String(), nil
}

// AnalyzeStats is the per-operator estimated-versus-actual cardinality tree
// from an instrumented execution.
type AnalyzeStats = exec.OpStats

// Analyze optimizes and executes a query with per-operator row counting and
// returns the rows plus the estimate-versus-actual tree (EXPLAIN ANALYZE).
func (db *DB) Analyze(sqlText string, disabled ...RuleID) ([]Row, *AnalyzeStats, error) {
	res, err := db.Optimize(sqlText, disabled...)
	if err != nil {
		return nil, nil, err
	}
	return exec.RunAnalyze(res.Plan, db.Catalog)
}

// NewGenerator builds a rule-targeted query generator over this database.
func (db *DB) NewGenerator(cfg GenConfig) (*Generator, error) {
	return qgen.New(db.Optimizer, cfg)
}

// GenerateSuite builds a correctness test suite (the bipartite graph of §4)
// for the given targets.
func (db *DB) GenerateSuite(targets []Target, cfg SuiteConfig) (*Graph, error) {
	return suite.Generate(db.Optimizer, targets, cfg)
}

// NewRuleSet builds a RuleSet from ids.
func NewRuleSet(ids ...RuleID) RuleSet { return rules.NewSet(ids...) }

// PatternXML serializes one rule pattern to its XML wire form (the API of
// §3.1).
func PatternXML(p *Pattern) ([]byte, error) { return rules.PatternXML(p) }

// Static-analysis surface (internal/rulecheck): the domain linter behind
// `qtrtest check`, runnable in-process against any registry or XML export.
type (
	// CheckReport is a static-analysis run's outcome: diagnostics plus the
	// rule-pair composability matrix.
	CheckReport = rulecheck.Report
	// CheckDiagnostic is one static-analysis finding.
	CheckDiagnostic = rulecheck.Diagnostic
	// CheckSeverity grades a finding (info, warning, error).
	CheckSeverity = rulecheck.Severity
	// ComposabilityMatrix records, per ordered exploration-rule pair, the
	// applicable §3 composition constructions and the produces→consumes
	// feeds relation.
	ComposabilityMatrix = rulecheck.Matrix
	// ExportedRule is one rule parsed back from the XML export API.
	ExportedRule = rules.ExportedRule
)

// Rule kinds.
const (
	KindExploration    = rules.KindExploration
	KindImplementation = rules.KindImplementation
)

// Check severities.
const (
	CheckInfo    = rulecheck.Info
	CheckWarning = rulecheck.Warning
	CheckError   = rulecheck.Error
)

// Static-analysis helpers, re-exported from the rulecheck package.
var (
	// CheckRules runs every static check against a live registry.
	CheckRules = rulecheck.CheckRegistry
	// CheckExportedRules runs the checks applicable to an XML-sourced rule
	// set.
	CheckExportedRules = rulecheck.CheckExported
	// ParseExportXML parses a registry export produced by Registry.ExportXML.
	ParseExportXML = rules.ParseExportXML
)

// RuleComposability computes the static rule-pair composability matrix of a
// registry's exploration rules from pattern shapes alone.
func RuleComposability(reg *Registry) *ComposabilityMatrix {
	return rulecheck.Composability(rulecheck.FromRegistry(reg))
}

// SingletonTargets wraps each rule as one target.
func SingletonTargets(ids []RuleID) []Target { return suite.SingletonTargets(ids) }

// PairTargets enumerates all rule pairs.
func PairTargets(ids []RuleID) []Target { return suite.PairTargets(ids) }

// ExplorationRuleIDs returns the IDs of the first n exploration rules (all
// of them for n <= 0).
func (db *DB) ExplorationRuleIDs(n int) []RuleID {
	var ids []RuleID
	for _, r := range db.Registry.All() {
		if r.Kind() != rules.KindExploration {
			continue
		}
		ids = append(ids, r.ID())
		if n > 0 && len(ids) == n {
			break
		}
	}
	return ids
}

// FormatRows renders rows for display.
func FormatRows(rows []Row, names []string) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(names, " | "))
	sb.WriteString("\n")
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, d := range r {
			parts[i] = d.String()
		}
		fmt.Fprintln(&sb, strings.Join(parts, " | "))
	}
	return sb.String()
}
